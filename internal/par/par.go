// Package par is the cold-path parallelism kit: a bounded worker pool
// with ordered fan-out/fan-in used by the tiler, the statistics
// collector and the optimizer's shape sweep. Its contract is the one the
// pipeline's determinism gate enforces: for any worker count, results
// are delivered in item order, the first error (by item index, not by
// wall clock) wins, and worker panics surface as errors rather than
// crashing sibling goroutines mid-merge. Every goroutine is joined
// before a call returns — no launch here outlives its caller (the
// goroutinehygiene analyzer checks the join signals).
//
// Two closure contracts are machine-checked by cmd/d2t2vet: the
// reductionorder analyzer flags schedule-dependent writes to captured
// state inside ForEach*/Map* closures (write into the claimed index's
// slot, reduce after the join), and the scratchescape analyzer flags
// scratch values of the *Scratch variants escaping their closure (see
// ForEachScratch for the ownership rules).
package par

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a requested worker count: values <= 0 mean "all
// cores" (GOMAXPROCS), anything else is taken as given. This is the
// repo-wide convention established by experiments.Suite.Workers.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// PanicError wraps a value recovered from a worker's panic so fan-out
// callers can surface it as an ordinary error instead of tearing down
// the process from a goroutine (matching the panic policy of library
// code).
type PanicError struct{ Value any }

func (p *PanicError) Error() string { return fmt.Sprintf("par: worker panic: %v", p.Value) }

// ForEach runs fn(i) for every i in [0, n) on at most `workers`
// goroutines (workers <= 0 meaning all cores) and returns the error of
// the lowest-index item that failed, or nil. Indices are claimed from a
// shared counter, so the schedule varies run to run — callers must write
// results into per-index state (slices, not shared maps) so the outcome
// is independent of the schedule. A panic inside fn is captured as a
// *PanicError for its index and competes for lowest-index like any other
// failure; remaining items still run.
func ForEach(workers, n int, fn func(i int) error) error {
	return ForEachCtx(context.Background(), workers, n, fn)
}

// ForEachCtx is ForEach with cooperative cancellation: every worker
// consults ctx.Err() before claiming the next index, so a cancelled or
// deadline-expired context stops the fan-out at the next item boundary
// instead of running the remaining items to completion. The item a
// worker observed the cancellation at records ctx.Err() as its error and
// competes for lowest-index like any other failure — so a cancelled call
// returns the context's error (wrapped results must test with
// errors.Is). Items that completed before the cancellation keep their
// outcomes; in-flight items are never interrupted mid-fn. With a
// never-cancelled context the semantics — and the results written by fn
// — are exactly ForEach's, byte-identical at any worker count.
func ForEachCtx(ctx context.Context, workers, n int, fn func(i int) error) error {
	return forEachScratchCtx(ctx, workers, n, nopScratch, func(i int, _ struct{}) error {
		return fn(i)
	})
}

// nopScratch is the zero-cost scratch constructor the scratch-free entry
// points reuse (one shared instantiation instead of a closure per call).
func nopScratch() struct{} { return struct{}{} }

// ForEachScratch is ForEach with per-worker scratch state: each worker
// lazily creates one scratch value S via newScratch on its first claimed
// item and hands the same value to every subsequent item it runs. The
// scratch is worker-private — fn may mutate it freely without
// synchronization — which lets hot loops reuse sized-once buffers
// (reset with clear(), not reallocated) across items. Because the
// item→worker schedule varies run to run, fn MUST NOT let per-item
// results depend on scratch contents left by a previous item: scratch is
// for capacity reuse, never for value reuse. In particular, references
// derived from the scratch (the value itself, fields, elements,
// sub-slices) must not be stored to captured variables, returned as an
// item's result, or sent on channels — copy into per-index state
// instead. The scratchescape analyzer enforces this; the one sanctioned
// leak is in newScratch itself, which may register the scratch it
// creates (under a lock) for a commutative post-join merge, as the
// stats collector does. Results written into per-index state remain
// byte-identical at any worker count exactly as with ForEach.
func ForEachScratch[S any](workers, n int, newScratch func() S, fn func(i int, scratch S) error) error {
	return forEachScratchCtx(context.Background(), workers, n, newScratch, fn)
}

// ForEachScratchCtx is ForEachScratch with cooperative cancellation
// (see ForEachCtx for the cancellation contract).
func ForEachScratchCtx[S any](ctx context.Context, workers, n int, newScratch func() S, fn func(i int, scratch S) error) error {
	return forEachScratchCtx(ctx, workers, n, newScratch, fn)
}

// forEachScratchCtx is the shared fan-out core: ForEachCtx is the S =
// struct{} instantiation, so the semantics documented there (lowest-index
// error wins, panics captured per item, ctx checked before each claim)
// hold for every variant by construction.
func forEachScratchCtx[S any](ctx context.Context, workers, n int, newScratch func() S, fn func(i int, scratch S) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		// Inline fast path: identical semantics (first error by index,
		// panics captured, ctx checked per item), none of the goroutine
		// machinery.
		scratch := newScratch()
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := runItem(i, scratch, fn); err != nil {
				return err
			}
		}
		return nil
	}

	errs := make([]error, n)
	var next int64 = -1
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var scratch S
			made := false
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				if err := ctx.Err(); err != nil {
					// Record the cancellation at the claimed index and stop
					// claiming; sibling workers observe the same ctx on
					// their next claim.
					errs[i] = err
					return
				}
				if !made {
					// Lazy: a worker that never claims an item never pays
					// for its scratch (workers > items happens on small
					// fan-outs).
					scratch = newScratch()
					made = true
				}
				errs[i] = runItem(i, scratch, fn)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// runItem invokes fn(i, scratch), converting a panic into a *PanicError.
func runItem[S any](i int, scratch S, fn func(int, S) error) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = &PanicError{Value: p}
		}
	}()
	return fn(i, scratch)
}

// Map runs fn over [0, n) like ForEach and returns the results in item
// order. On error the partial results are discarded and the
// lowest-index error is returned.
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	return MapCtx(context.Background(), workers, n, fn)
}

// MapCtx is Map with cooperative cancellation (see ForEachCtx): a
// cancelled context discards the partial results and returns the
// context's error under the lowest-index-wins rule.
func MapCtx[T any](ctx context.Context, workers, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEachCtx(ctx, workers, n, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// MapScratch is Map with per-worker scratch state (see ForEachScratch
// for the ownership contract: scratch is for capacity reuse, never for
// value reuse). Results are returned in item order regardless of which
// worker produced them.
func MapScratch[T, S any](workers, n int, newScratch func() S, fn func(i int, scratch S) (T, error)) ([]T, error) {
	return MapScratchCtx(context.Background(), workers, n, newScratch, fn)
}

// MapScratchCtx is MapScratch with cooperative cancellation (see
// ForEachCtx): a cancelled context discards the partial results and
// returns the context's error under the lowest-index-wins rule.
func MapScratchCtx[T, S any](ctx context.Context, workers, n int, newScratch func() S, fn func(i int, scratch S) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := forEachScratchCtx(ctx, workers, n, newScratch, func(i int, scratch S) error {
		v, err := fn(i, scratch)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Chunks splits [0, n) into at most `workers` contiguous half-open
// ranges of near-equal size, in order. Reductions that are associative
// and commutative (integer sums, maxima, boolean ORs, bottom-k merges)
// can fan out one chunk per range and merge in chunk order for a result
// identical to the serial pass at any worker count.
func Chunks(workers, n int) [][2]int {
	if n <= 0 {
		return nil
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	out := make([][2]int, 0, workers)
	lo := 0
	for c := 0; c < workers; c++ {
		hi := lo + (n-lo)/(workers-c)
		if hi > lo {
			out = append(out, [2]int{lo, hi})
			lo = hi
		}
	}
	return out
}
