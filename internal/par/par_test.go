package par

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"
)

func TestForEachRunsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 8, 100} {
		n := 257
		hits := make([]int32, n)
		err := ForEach(workers, n, func(i int) error {
			atomic.AddInt32(&hits[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, h)
			}
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	if err := ForEach(4, 0, func(int) error { t.Fatal("fn called"); return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestForEachLowestIndexErrorWins(t *testing.T) {
	for _, workers := range []int{1, 4, 16} {
		err := ForEach(workers, 64, func(i int) error {
			if i%7 == 3 { // fails at 3, 10, 17, ...
				return fmt.Errorf("item %d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "item 3" {
			t.Fatalf("workers=%d: want lowest-index error \"item 3\", got %v", workers, err)
		}
	}
}

func TestForEachPanicBecomesError(t *testing.T) {
	for _, workers := range []int{1, 4} {
		err := ForEach(workers, 8, func(i int) error {
			if i == 2 {
				panic("boom")
			}
			if i == 5 {
				return errors.New("late error")
			}
			return nil
		})
		var pe *PanicError
		if !errors.As(err, &pe) || pe.Value != "boom" {
			t.Fatalf("workers=%d: want PanicError(boom) from index 2, got %v", workers, err)
		}
	}
}

func TestMapOrdered(t *testing.T) {
	for _, workers := range []int{1, 4, 32} {
		out, err := Map(workers, 100, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
	}
}

func TestMapErrorDiscardsResults(t *testing.T) {
	out, err := Map(4, 10, func(i int) (int, error) {
		if i >= 5 {
			return 0, fmt.Errorf("item %d", i)
		}
		return i, nil
	})
	if out != nil || err == nil || err.Error() != "item 5" {
		t.Fatalf("want (nil, item 5), got (%v, %v)", out, err)
	}
}

func TestForEachCtxCancelStopsClaiming(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var ran int32
		err := ForEachCtx(ctx, workers, 100_000, func(i int) error {
			if atomic.AddInt32(&ran, 1) == 8 {
				cancel()
			}
			return nil
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		// In-flight items finish, but no worker may claim fresh work after
		// the cancel: far fewer than n items ran.
		if n := atomic.LoadInt32(&ran); n >= 100_000 {
			t.Fatalf("workers=%d: all %d items ran despite cancellation", workers, n)
		}
	}
}

func TestForEachCtxPreCancelledRunsNothing(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		err := ForEachCtx(ctx, workers, 64, func(i int) error {
			t.Errorf("workers=%d: fn ran for index %d", workers, i)
			return nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
	}
	// Even the n == 0 fast path reports a dead context.
	if err := ForEachCtx(ctx, 4, 0, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("n=0: err = %v, want context.Canceled", err)
	}
	if err := ForEachCtx(context.Background(), 4, 0, nil); err != nil {
		t.Fatalf("n=0 live ctx: %v", err)
	}
}

// TestForEachCtxFnErrorBeatsCancellation pins the interaction of the
// lowest-index-wins rule with cancellation: a worker records ctx.Err()
// at the index it claimed, and the claim counter is monotonic, so every
// cancellation triggered BY an item error lands at a higher index than
// the error itself — callers always see the root cause, never the
// secondary context error.
func TestForEachCtxFnErrorBeatsCancellation(t *testing.T) {
	for _, workers := range []int{1, 4, 16} {
		ctx, cancel := context.WithCancel(context.Background())
		err := ForEachCtx(ctx, workers, 256, func(i int) error {
			if i == 3 {
				cancel()
				return fmt.Errorf("item %d", i)
			}
			return nil
		})
		cancel()
		if err == nil || err.Error() != "item 3" {
			t.Fatalf("workers=%d: want \"item 3\", got %v", workers, err)
		}
	}
}

func TestForEachCtxUncancelledMatchesForEach(t *testing.T) {
	for _, workers := range []int{1, 5} {
		n := 129
		hits := make([]int32, n)
		err := ForEachCtx(context.Background(), workers, n, func(i int) error {
			atomic.AddInt32(&hits[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, h)
			}
		}
	}
}

func TestMapCtxCancelDiscardsResults(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out, err := MapCtx(ctx, 4, 10, func(i int) (int, error) { return i, nil })
	if out != nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("want (nil, context.Canceled), got (%v, %v)", out, err)
	}
	good, err := MapCtx(context.Background(), 4, 10, func(i int) (int, error) { return i * 2, nil })
	if err != nil || len(good) != 10 || good[7] != 14 {
		t.Fatalf("live ctx MapCtx: (%v, %v)", good, err)
	}
}

func TestChunksCoverDisjoint(t *testing.T) {
	for _, tc := range []struct{ workers, n int }{
		{1, 10}, {3, 10}, {10, 10}, {16, 10}, {4, 1}, {0, 5}, {7, 100},
	} {
		chunks := Chunks(tc.workers, tc.n)
		covered := 0
		prev := 0
		for _, c := range chunks {
			if c[0] != prev || c[1] <= c[0] {
				t.Fatalf("workers=%d n=%d: bad chunk %v (prev end %d)", tc.workers, tc.n, c, prev)
			}
			covered += c[1] - c[0]
			prev = c[1]
		}
		if covered != tc.n || prev != tc.n {
			t.Fatalf("workers=%d n=%d: chunks %v cover %d", tc.workers, tc.n, chunks, covered)
		}
		if tc.workers >= 1 && len(chunks) > tc.workers {
			t.Fatalf("workers=%d n=%d: %d chunks", tc.workers, tc.n, len(chunks))
		}
	}
	if Chunks(4, 0) != nil {
		t.Fatal("Chunks(4, 0) should be nil")
	}
}

func TestChunksBalanced(t *testing.T) {
	chunks := Chunks(4, 10)
	sizes := make([]int, len(chunks))
	for i, c := range chunks {
		sizes[i] = c[1] - c[0]
	}
	if !reflect.DeepEqual(sizes, []int{2, 3, 2, 3}) && !reflect.DeepEqual(sizes, []int{3, 3, 2, 2}) {
		// Near-equal: no chunk may differ from another by more than 1.
		min, max := sizes[0], sizes[0]
		for _, s := range sizes {
			if s < min {
				min = s
			}
			if s > max {
				max = s
			}
		}
		if max-min > 1 {
			t.Fatalf("unbalanced chunks: %v", sizes)
		}
	}
}

func TestWorkersResolve(t *testing.T) {
	if Workers(0) < 1 || Workers(-3) < 1 {
		t.Fatal("Workers(<=0) must resolve to at least 1")
	}
	if Workers(5) != 5 {
		t.Fatal("Workers(5) != 5")
	}
}
