package par

import (
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"
)

func TestForEachRunsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 8, 100} {
		n := 257
		hits := make([]int32, n)
		err := ForEach(workers, n, func(i int) error {
			atomic.AddInt32(&hits[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, h)
			}
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	if err := ForEach(4, 0, func(int) error { t.Fatal("fn called"); return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestForEachLowestIndexErrorWins(t *testing.T) {
	for _, workers := range []int{1, 4, 16} {
		err := ForEach(workers, 64, func(i int) error {
			if i%7 == 3 { // fails at 3, 10, 17, ...
				return fmt.Errorf("item %d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "item 3" {
			t.Fatalf("workers=%d: want lowest-index error \"item 3\", got %v", workers, err)
		}
	}
}

func TestForEachPanicBecomesError(t *testing.T) {
	for _, workers := range []int{1, 4} {
		err := ForEach(workers, 8, func(i int) error {
			if i == 2 {
				panic("boom")
			}
			if i == 5 {
				return errors.New("late error")
			}
			return nil
		})
		var pe *PanicError
		if !errors.As(err, &pe) || pe.Value != "boom" {
			t.Fatalf("workers=%d: want PanicError(boom) from index 2, got %v", workers, err)
		}
	}
}

func TestMapOrdered(t *testing.T) {
	for _, workers := range []int{1, 4, 32} {
		out, err := Map(workers, 100, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
	}
}

func TestMapErrorDiscardsResults(t *testing.T) {
	out, err := Map(4, 10, func(i int) (int, error) {
		if i >= 5 {
			return 0, fmt.Errorf("item %d", i)
		}
		return i, nil
	})
	if out != nil || err == nil || err.Error() != "item 5" {
		t.Fatalf("want (nil, item 5), got (%v, %v)", out, err)
	}
}

func TestChunksCoverDisjoint(t *testing.T) {
	for _, tc := range []struct{ workers, n int }{
		{1, 10}, {3, 10}, {10, 10}, {16, 10}, {4, 1}, {0, 5}, {7, 100},
	} {
		chunks := Chunks(tc.workers, tc.n)
		covered := 0
		prev := 0
		for _, c := range chunks {
			if c[0] != prev || c[1] <= c[0] {
				t.Fatalf("workers=%d n=%d: bad chunk %v (prev end %d)", tc.workers, tc.n, c, prev)
			}
			covered += c[1] - c[0]
			prev = c[1]
		}
		if covered != tc.n || prev != tc.n {
			t.Fatalf("workers=%d n=%d: chunks %v cover %d", tc.workers, tc.n, chunks, covered)
		}
		if tc.workers >= 1 && len(chunks) > tc.workers {
			t.Fatalf("workers=%d n=%d: %d chunks", tc.workers, tc.n, len(chunks))
		}
	}
	if Chunks(4, 0) != nil {
		t.Fatal("Chunks(4, 0) should be nil")
	}
}

func TestChunksBalanced(t *testing.T) {
	chunks := Chunks(4, 10)
	sizes := make([]int, len(chunks))
	for i, c := range chunks {
		sizes[i] = c[1] - c[0]
	}
	if !reflect.DeepEqual(sizes, []int{2, 3, 2, 3}) && !reflect.DeepEqual(sizes, []int{3, 3, 2, 2}) {
		// Near-equal: no chunk may differ from another by more than 1.
		min, max := sizes[0], sizes[0]
		for _, s := range sizes {
			if s < min {
				min = s
			}
			if s > max {
				max = s
			}
		}
		if max-min > 1 {
			t.Fatalf("unbalanced chunks: %v", sizes)
		}
	}
}

func TestWorkersResolve(t *testing.T) {
	if Workers(0) < 1 || Workers(-3) < 1 {
		t.Fatal("Workers(<=0) must resolve to at least 1")
	}
	if Workers(5) != 5 {
		t.Fatal("Workers(5) != 5")
	}
}
