package snapshot

import (
	"bytes"
	"testing"
)

// FuzzSnapshotDecode checks the decoder never panics on arbitrary input
// and that anything it accepts is canonical: re-encoding an accepted
// artifact must itself decode, and re-encoding *that* is a fixed point
// (the first re-encode may legitimately drop unknown sections).
func FuzzSnapshotDecode(f *testing.F) {
	if full, err := EncodeBytes(testArtifact(f)); err == nil {
		f.Add(full)
	}
	empty, _ := EncodeBytes(&Artifact{})
	f.Add(empty)
	resp, _ := EncodeBytes(&Artifact{Response: []byte(`{"ok":true}`)})
	f.Add(resp)
	f.Add([]byte(Magic))
	f.Add([]byte("garbage"))

	f.Fuzz(func(t *testing.T, b []byte) {
		a, err := DecodeBytes(b)
		if err != nil {
			return
		}
		enc, err := EncodeBytes(a)
		if err != nil {
			t.Fatalf("accepted artifact cannot re-encode: %v", err)
		}
		a2, err := DecodeBytes(enc)
		if err != nil {
			t.Fatalf("re-encoded artifact does not decode: %v", err)
		}
		enc2, err := EncodeBytes(a2)
		if err != nil {
			t.Fatalf("second re-encode failed: %v", err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("encoding is not a fixed point: %d vs %d bytes", len(enc), len(enc2))
		}
	})
}
