package snapshot

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"d2t2/internal/wire"
)

// TestRiskSectionCompat pins the satellite-2 compatibility contract: a
// conservative artifact (Risk nil) encodes exactly as the pre-risk codec
// did — no RISK tag anywhere — and a risk-annotated artifact only
// *appends* the new section, leaving the pre-risk prefix byte-identical.
func TestRiskSectionCompat(t *testing.T) {
	a := testArtifact(t)
	plain, err := EncodeBytes(a)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(plain, []byte(tagRisk)) {
		t.Fatal("conservative artifact encoding contains a RISK tag")
	}
	dec, err := DecodeBytes(plain)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Risk != nil {
		t.Fatalf("conservative artifact decoded with Risk = %+v", dec.Risk)
	}

	a.Risk = &RiskMeta{OverflowTarget: 0.05, PredictedOverflowRate: 0.031, Calibrated: true}
	risky, err := EncodeBytes(a)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(risky, plain) {
		t.Fatal("risk-annotated encoding does not extend the conservative bytes: pre-risk readers would see different artifacts")
	}
	got, err := DecodeBytes(risky)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Risk, a.Risk) {
		t.Fatalf("risk meta round trip: got %+v, want %+v", got.Risk, a.Risk)
	}
	reenc, err := EncodeBytes(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(reenc, risky) {
		t.Fatal("risk-annotated encoding is not canonical (decode+encode changed bytes)")
	}
}

// TestRiskSectionSkippedByPreRiskReaders simulates a pre-risk reader:
// the RISK tag rides the unknown-section rule, so an artifact written by
// this codec must still decode if the tag were unknown — which the
// codec guarantees by framing RISK exactly like every other section.
// Here we verify the inverse direction: bytes with an unknown future
// section after RISK still decode and preserve Risk.
func TestRiskSectionSkippedByPreRiskReaders(t *testing.T) {
	a := testArtifact(t)
	a.Risk = &RiskMeta{OverflowTarget: 0.01}
	b, err := EncodeBytes(a)
	if err != nil {
		t.Fatal(err)
	}
	b = appendSection(b, "ZZZZ", []byte("future payload"))
	got, err := DecodeBytes(b)
	if err != nil {
		t.Fatalf("unknown section after RISK broke decoding: %v", err)
	}
	if got.Risk == nil || got.Risk.OverflowTarget != 0.01 {
		t.Fatalf("risk meta lost: %+v", got.Risk)
	}
}

// TestDecodeRiskRejects: malformed RISK payloads fail loudly instead of
// yielding a half-initialized risk point.
func TestDecodeRiskRejects(t *testing.T) {
	valid := encodeRisk(&RiskMeta{OverflowTarget: 0.05, PredictedOverflowRate: 0.02})
	if _, err := decodeRisk(valid); err != nil {
		t.Fatalf("valid payload rejected: %v", err)
	}
	cases := []struct {
		name    string
		payload []byte
		want    string
	}{
		{"future version", encodeRisk2(&RiskMeta{OverflowTarget: 0.05}), "version"},
		{"stray bytes", append(append([]byte(nil), valid...), 0xFF), "stray"},
		{"target out of range", encodeRisk(&RiskMeta{OverflowTarget: 1.5}), "outside [0, 1)"},
		{"truncated", valid[:len(valid)-4], ""},
	}
	for _, tc := range cases {
		_, err := decodeRisk(tc.payload)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want mention of %q", tc.name, err, tc.want)
		}
	}
}

// encodeRisk2 emits a RISK payload stamped with a future version number.
func encodeRisk2(m *RiskMeta) []byte {
	b := wire.AppendU64(nil, riskMetaVersion+1)
	b = wire.AppendF64(b, m.OverflowTarget)
	b = wire.AppendF64(b, m.PredictedOverflowRate)
	return appendOptional(b, m.Calibrated)
}
