// Package snapshot implements the versioned binary artifact codec behind
// the d2t2d optimizer service: it serializes the expensive products of
// the tile-and-collect phase — the original COO tensor, its conservative
// tiled-CSF partitioning, and the collected statistics bundle (SizeTile,
// MaxTile, PrTileIdx, ProbIndex, Corrs, TileCorrs, element histograms,
// pair sketches, micro summary) — so that any later shape/budget query
// can be answered without touching the raw data again (the paper's
// collect-once, query-many design).
//
// Wire format: an 8-byte magic ("D2T2SNAP"), a u16 format version, a u16
// reserved field, then a sequence of sections. Each section is framed as
// a 4-byte tag, a u64 little-endian payload length, the payload, and a
// u32 CRC32 (IEEE) of the payload. Unknown tags are skipped (their CRC
// is still verified), so newer writers stay readable by older readers.
// The encoding is canonical: decode followed by encode is byte-identical.
//
// The package also defines the service's content addresses: TensorID is
// the SHA-256 of the canonical (sorted, deduplicated) COO encoding, and
// StatsKey/ResponseKey derive artifact keys from it.
package snapshot

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash/crc32"
	"io"
	"sort"

	"d2t2/internal/formats"
	"d2t2/internal/stats"
	"d2t2/internal/tensor"
	"d2t2/internal/tiling"
	"d2t2/internal/wire"
)

// Magic identifies a snapshot stream; Version is the current format.
const (
	Magic   = "D2T2SNAP"
	Version = 1
)

// Section tags. Each may appear at most once per snapshot.
const (
	tagTensor   = "TENS"
	tagTiled    = "TILE"
	tagStats    = "STAT"
	tagPartial  = "PART"
	tagResponse = "RESP"
	tagRisk     = "RISK"
)

// ErrTruncated is wrapped by decode errors caused by input ending inside
// a frame — the signature of a torn write or a short read.
var ErrTruncated = fmt.Errorf("snapshot: truncated input")

// Artifact is one cacheable unit: any subset of a tensor, its tiled
// form, its statistics bundle, and an opaque response payload (cached
// service responses ride the same store). Nil fields are omitted from
// the encoding.
type Artifact struct {
	Tensor   *tensor.COO
	Tiled    *tiling.TiledTensor
	Stats    *stats.Stats
	Partial  *stats.Partial
	Response []byte
	// Risk annotates a response produced under risk-aware optimization
	// (DESIGN.md §18). Nil — every conservative artifact — omits the
	// section, so those artifacts stay byte-identical to pre-risk
	// encoders; pre-risk readers skip the tag via the unknown-section
	// rule.
	Risk *RiskMeta
}

// RiskMeta is the RISK section: the risk point a cached response was
// computed at. It carries its own payload version so risk fields can
// evolve without a codec-wide version bump.
type RiskMeta struct {
	// OverflowTarget is the requested overflow probability;
	// PredictedOverflowRate the model's estimate at the chosen config.
	OverflowTarget        float64
	PredictedOverflowRate float64
	// Calibrated reports whether a measurement-backend calibration run
	// contributed to the response.
	Calibrated bool
}

// riskMetaVersion is the RISK payload format version.
const riskMetaVersion = 1

// EncodeBytes serializes the artifact.
func EncodeBytes(a *Artifact) ([]byte, error) {
	buf := make([]byte, 0, 1<<12)
	buf = append(buf, Magic...)
	buf = binary.LittleEndian.AppendUint16(buf, Version)
	buf = binary.LittleEndian.AppendUint16(buf, 0)
	if a.Tensor != nil {
		payload, err := encodeTensor(a.Tensor)
		if err != nil {
			return nil, err
		}
		buf = appendSection(buf, tagTensor, payload)
	}
	if a.Tiled != nil {
		payload, err := encodeTiled(a.Tiled)
		if err != nil {
			return nil, err
		}
		buf = appendSection(buf, tagTiled, payload)
	}
	if a.Stats != nil {
		buf = appendSection(buf, tagStats, encodeStats(a.Stats))
	}
	if a.Partial != nil {
		buf = appendSection(buf, tagPartial, encodePartial(a.Partial))
	}
	if a.Response != nil {
		buf = appendSection(buf, tagResponse, a.Response)
	}
	if a.Risk != nil {
		buf = appendSection(buf, tagRisk, encodeRisk(a.Risk))
	}
	return buf, nil
}

// Encode writes the artifact to w.
func Encode(w io.Writer, a *Artifact) error {
	b, err := EncodeBytes(a)
	if err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}

// DecodeBytes parses a snapshot, verifying the magic, version, framing
// and every section CRC. Unknown sections are skipped; duplicate known
// sections are an error.
func DecodeBytes(b []byte) (*Artifact, error) {
	if len(b) < len(Magic)+4 {
		return nil, fmt.Errorf("%w: %d bytes is shorter than the header", ErrTruncated, len(b))
	}
	if string(b[:len(Magic)]) != Magic {
		return nil, fmt.Errorf("snapshot: bad magic %q", b[:len(Magic)])
	}
	ver := binary.LittleEndian.Uint16(b[len(Magic):])
	if ver != Version {
		return nil, fmt.Errorf("snapshot: unsupported format version %d (have %d)", ver, Version)
	}
	a := &Artifact{}
	seen := map[string]bool{}
	off := len(Magic) + 4
	for off < len(b) {
		if len(b)-off < 12 {
			return nil, fmt.Errorf("%w: %d trailing bytes cannot frame a section", ErrTruncated, len(b)-off)
		}
		tag := string(b[off : off+4])
		plen := binary.LittleEndian.Uint64(b[off+4 : off+12])
		off += 12
		// Compare in uint64 with the CRC width subtracted from the payload
		// side: remaining-4 would wrap when under 4 bytes are left, and a
		// wrapped bound admits any length (the slice below could then read
		// past len(b) into spare capacity of a shared backing array).
		if rem := uint64(len(b) - off); rem < 4 || plen > rem-4 {
			return nil, fmt.Errorf("%w: section %q declares %d payload bytes, %d remain", ErrTruncated, tag, plen, len(b)-off)
		}
		payload := b[off : off+int(plen)]
		off += int(plen)
		sum := binary.LittleEndian.Uint32(b[off : off+4])
		off += 4
		if got := crc32.ChecksumIEEE(payload); got != sum {
			return nil, fmt.Errorf("snapshot: section %q CRC mismatch: stored %08x, computed %08x", tag, sum, got)
		}
		if seen[tag] {
			return nil, fmt.Errorf("snapshot: duplicate section %q", tag)
		}
		seen[tag] = true
		var err error
		switch tag {
		case tagTensor:
			a.Tensor, err = decodeTensor(payload)
		case tagTiled:
			a.Tiled, err = decodeTiled(payload)
		case tagStats:
			a.Stats, err = decodeStats(payload)
		case tagPartial:
			a.Partial, err = decodePartial(payload)
		case tagResponse:
			a.Response = append([]byte(nil), payload...)
		case tagRisk:
			a.Risk, err = decodeRisk(payload)
		default:
			// Forward compatibility: unknown sections are checksummed but
			// otherwise ignored.
		}
		if err != nil {
			return nil, err
		}
	}
	return a, nil
}

// Decode reads a complete snapshot from r.
func Decode(r io.Reader) (*Artifact, error) {
	b, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return DecodeBytes(b)
}

func appendSection(buf []byte, tag string, payload []byte) []byte {
	buf = append(buf, tag...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(payload)))
	buf = append(buf, payload...)
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(payload))
}

// maxCodecOrder bounds the tensor order accepted by decoders, matching
// the formats codec.
const maxCodecOrder = 16

// --- TENS ---------------------------------------------------------------

func encodeTensor(t *tensor.COO) ([]byte, error) {
	n := t.Order()
	if n < 1 || n > maxCodecOrder {
		return nil, fmt.Errorf("snapshot: tensor order %d outside 1..%d", n, maxCodecOrder)
	}
	b := wire.AppendInts(nil, t.Dims)
	for a := 0; a < n; a++ {
		b = wire.AppendInts(b, t.Crds[a])
	}
	return wire.AppendF64s(b, t.Vals), nil
}

func decodeTensor(payload []byte) (*tensor.COO, error) {
	r := wire.NewReader(payload)
	dims := r.Ints()
	if err := r.Err(); err != nil {
		return nil, err
	}
	n := len(dims)
	if n < 1 || n > maxCodecOrder {
		return nil, fmt.Errorf("snapshot: tensor order %d outside 1..%d", n, maxCodecOrder)
	}
	crds := make([][]int, n)
	for a := 0; a < n; a++ {
		crds[a] = r.Ints()
	}
	vals := r.F64s()
	if err := r.Err(); err != nil {
		return nil, err
	}
	for a := 0; a < n; a++ {
		if len(crds[a]) != len(vals) {
			return nil, fmt.Errorf("snapshot: axis %d has %d coordinates for %d values", a, len(crds[a]), len(vals))
		}
		if dims[a] < 1 {
			return nil, fmt.Errorf("snapshot: tensor dimension %d on axis %d", dims[a], a)
		}
		for _, c := range crds[a] {
			if c < 0 || c >= dims[a] {
				return nil, fmt.Errorf("snapshot: coordinate %d out of range [0,%d) on axis %d", c, dims[a], a)
			}
		}
	}
	t := tensor.New(dims...)
	t.Crds = crds
	t.Vals = vals
	return t, nil
}

// --- TILE ---------------------------------------------------------------

func encodeTiled(tt *tiling.TiledTensor) ([]byte, error) {
	if tt.PackedFrom != nil {
		return nil, fmt.Errorf("snapshot: packed super-tiles are not serializable")
	}
	b := wire.AppendInts(nil, tt.Dims)
	b = wire.AppendInts(b, tt.TileDims)
	b = wire.AppendInts(b, tt.Order)
	keys := tt.SortedKeys()
	b = wire.AppendU64(b, uint64(len(keys)))
	for _, k := range keys {
		tile := tt.Tiles[k]
		if tile.Members != nil || tile.CSF == nil {
			return nil, fmt.Errorf("snapshot: packed super-tiles are not serializable")
		}
		b = wire.AppendInts(b, tile.Outer)
		b = tile.CSF.AppendBinary(b)
	}
	return b, nil
}

func decodeTiled(payload []byte) (*tiling.TiledTensor, error) {
	r := wire.NewReader(payload)
	dims := r.Ints()
	tileDims := r.Ints()
	order := r.Ints()
	numTiles := r.U64()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if len(dims) < 1 || len(dims) > maxCodecOrder {
		return nil, fmt.Errorf("snapshot: tiled tensor order %d outside 1..%d", len(dims), maxCodecOrder)
	}
	// A tile frames at least a few dozen bytes; this cheap bound keeps a
	// corrupted count from preallocating an absurd slice.
	if numTiles > uint64(len(payload)) {
		return nil, fmt.Errorf("snapshot: tile count %d exceeds payload size", numTiles)
	}
	tiles := make([]*tiling.Tile, 0, numTiles)
	for i := uint64(0); i < numTiles; i++ {
		outer := r.Ints()
		if err := r.Err(); err != nil {
			return nil, err
		}
		csf, err := formats.DecodeCSF(r)
		if err != nil {
			return nil, err
		}
		tiles = append(tiles, &tiling.Tile{Outer: outer, CSF: csf})
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	if r.Remaining() != 0 {
		return nil, fmt.Errorf("snapshot: %d stray bytes after tiled section", r.Remaining())
	}
	return tiling.FromTiles(dims, tileDims, order, tiles)
}

// --- STAT ---------------------------------------------------------------

func encodeStats(s *stats.Stats) []byte {
	p := s.Portable()
	b := wire.AppendInts(nil, p.Dims)
	b = wire.AppendInts(b, p.BaseTileDims)
	b = wire.AppendInts(b, p.Order)
	b = wire.AppendI64(b, int64(p.NNZ))
	b = wire.AppendF64(b, p.SizeTile)
	b = wire.AppendI64(b, int64(p.MaxTile))
	b = wire.AppendI64(b, int64(p.NumTiles))
	b = wire.AppendF64s(b, p.PrTileIdx)
	b = wire.AppendF64s(b, p.ProbIndex)

	axes := make([]int, 0, len(p.Corrs))
	for ax := range p.Corrs {
		axes = append(axes, ax)
	}
	sort.Ints(axes)
	b = wire.AppendU64(b, uint64(len(axes)))
	for _, ax := range axes {
		b = wire.AppendI64(b, int64(ax))
		b = wire.AppendF64s(b, p.Corrs[ax])
	}

	b = wire.AppendU64(b, uint64(len(p.TileCorrs)))
	for _, tc := range p.TileCorrs {
		b = wire.AppendF64s(b, tc)
	}

	b = appendOptional(b, p.ElemCounts != nil)
	if p.ElemCounts != nil {
		b = wire.AppendU64(b, uint64(len(p.ElemCounts)))
		for _, ec := range p.ElemCounts {
			b = wire.AppendI32s(b, ec)
		}
	}
	b = appendOptional(b, p.PairSketch != nil)
	if p.PairSketch != nil {
		b = wire.AppendU64(b, uint64(len(p.PairSketch)))
		for _, ps := range p.PairSketch {
			b = wire.AppendU64s(b, ps)
		}
	}

	b = wire.AppendU64(b, uint64(len(p.Occupancy)))
	for _, occ := range p.Occupancy {
		b = wire.AppendBools(b, occ)
	}

	b = appendOptional(b, p.Micro != nil)
	if m := p.Micro; m != nil {
		b = wire.AppendInts(b, m.Dims)
		b = wire.AppendInts(b, m.MicroDims)
		b = wire.AppendInts(b, m.OuterDims)
		b = wire.AppendU64s(b, m.Keys)
		b = wire.AppendI32s(b, m.NNZ)
		b = wire.AppendI32s(b, m.Footprint)
		b = wire.AppendF64(b, m.FPScale)
	}
	return b
}

func appendOptional(b []byte, present bool) []byte {
	if present {
		return wire.AppendU8(b, 1)
	}
	return wire.AppendU8(b, 0)
}

func decodeStats(payload []byte) (*stats.Stats, error) {
	r := wire.NewReader(payload)
	p := &stats.Portable{
		Dims:         r.Ints(),
		BaseTileDims: r.Ints(),
		Order:        r.Ints(),
		NNZ:          int(r.I64()),
		SizeTile:     r.F64(),
		MaxTile:      int(r.I64()),
		NumTiles:     int(r.I64()),
		PrTileIdx:    r.F64s(),
		ProbIndex:    r.F64s(),
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	if len(p.Dims) > maxCodecOrder {
		return nil, fmt.Errorf("snapshot: stats order %d exceeds %d", len(p.Dims), maxCodecOrder)
	}

	nCorrs := r.U64()
	if nCorrs > uint64(maxCodecOrder) {
		return nil, fmt.Errorf("snapshot: %d corr axes exceeds %d", nCorrs, maxCodecOrder)
	}
	p.Corrs = make(map[int][]float64, nCorrs)
	for i := uint64(0); i < nCorrs && r.Err() == nil; i++ {
		ax := int(r.I64())
		curve := r.F64s()
		if _, dup := p.Corrs[ax]; dup {
			return nil, fmt.Errorf("snapshot: duplicate corr axis %d", ax)
		}
		p.Corrs[ax] = curve
	}

	nTC := r.U64()
	if nTC > uint64(maxCodecOrder) {
		return nil, fmt.Errorf("snapshot: %d tile-corr axes exceeds %d", nTC, maxCodecOrder)
	}
	p.TileCorrs = make([][]float64, 0, nTC)
	for i := uint64(0); i < nTC && r.Err() == nil; i++ {
		p.TileCorrs = append(p.TileCorrs, r.F64s())
	}

	if r.U8() == 1 {
		n := r.U64()
		if n > uint64(maxCodecOrder) {
			return nil, fmt.Errorf("snapshot: %d element-count axes exceeds %d", n, maxCodecOrder)
		}
		p.ElemCounts = make([][]int32, 0, n)
		for i := uint64(0); i < n && r.Err() == nil; i++ {
			p.ElemCounts = append(p.ElemCounts, r.I32s())
		}
	}
	if r.U8() == 1 {
		n := r.U64()
		if n > uint64(maxCodecOrder) {
			return nil, fmt.Errorf("snapshot: %d pair-sketch axes exceeds %d", n, maxCodecOrder)
		}
		p.PairSketch = make([][]uint64, 0, n)
		for i := uint64(0); i < n && r.Err() == nil; i++ {
			p.PairSketch = append(p.PairSketch, r.U64s())
		}
	}

	nOcc := r.U64()
	if nOcc > uint64(maxCodecOrder) {
		return nil, fmt.Errorf("snapshot: %d occupancy axes exceeds %d", nOcc, maxCodecOrder)
	}
	p.Occupancy = make([][]bool, 0, nOcc)
	for i := uint64(0); i < nOcc && r.Err() == nil; i++ {
		p.Occupancy = append(p.Occupancy, r.Bools())
	}

	if r.U8() == 1 {
		p.Micro = &stats.PortableMicro{
			Dims:      r.Ints(),
			MicroDims: r.Ints(),
			OuterDims: r.Ints(),
			Keys:      r.U64s(),
			NNZ:       r.I32s(),
			Footprint: r.I32s(),
			FPScale:   r.F64(),
		}
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	if r.Remaining() != 0 {
		return nil, fmt.Errorf("snapshot: %d stray bytes after stats section", r.Remaining())
	}
	return stats.FromPortable(p)
}

// --- PART ---------------------------------------------------------------

func encodePartial(p *stats.Partial) []byte {
	b := wire.AppendInts(nil, p.Dims)
	b = wire.AppendInts(b, p.TileDims)
	b = wire.AppendInts(b, p.Order)
	b = wire.AppendInts(b, p.MicroDims)
	b = wire.AppendInts(b, p.CorrAxes)
	b = wire.AppendInts(b, p.CorrMaxShift)
	b = wire.AppendI64(b, int64(p.CorrSampleTarget))
	b = wire.AppendI64(b, int64(p.TileCorrMaxShift))
	b = appendOptional(b, p.SkipExtensions)
	b = wire.AppendI64(b, int64(p.NNZ))

	b = appendOptional(b, p.ElemCounts != nil)
	if p.ElemCounts != nil {
		b = wire.AppendU64(b, uint64(len(p.ElemCounts)))
		for _, ec := range p.ElemCounts {
			b = wire.AppendI32s(b, ec)
		}
	}
	b = appendOptional(b, p.Sketches != nil)
	if p.Sketches != nil {
		b = wire.AppendU64(b, uint64(len(p.Sketches)))
		for _, sk := range p.Sketches {
			b = wire.AppendU64s(b, sk)
		}
	}

	b = wire.AppendU64(b, uint64(len(p.CorrOff)))
	for i := range p.CorrOff {
		b = wire.AppendI32s(b, p.CorrOff[i])
		b = wire.AppendU64s(b, p.CorrRest[i])
	}

	b = wire.AppendU64s(b, p.TileKeys)
	b = wire.AppendI32s(b, p.TileNNZ)
	b = wire.AppendI32s(b, p.TileFP)
	b = wire.AppendU64(b, uint64(len(p.TileFibers)))
	for _, f := range p.TileFibers {
		b = wire.AppendI32s(b, f)
	}
	b = wire.AppendU64s(b, p.MicroKeys)
	b = wire.AppendI32s(b, p.MicroNNZ)
	return wire.AppendI32s(b, p.MicroFP)
}

func decodePartial(payload []byte) (*stats.Partial, error) {
	r := wire.NewReader(payload)
	p := &stats.Partial{
		Dims:             r.Ints(),
		TileDims:         r.Ints(),
		Order:            r.Ints(),
		MicroDims:        r.Ints(),
		CorrAxes:         r.Ints(),
		CorrMaxShift:     r.Ints(),
		CorrSampleTarget: int(r.I64()),
		TileCorrMaxShift: int(r.I64()),
		SkipExtensions:   r.U8() == 1,
		NNZ:              int(r.I64()),
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	if len(p.Dims) > maxCodecOrder {
		return nil, fmt.Errorf("snapshot: partial order %d exceeds %d", len(p.Dims), maxCodecOrder)
	}

	if r.U8() == 1 {
		n := r.U64()
		if n > uint64(maxCodecOrder) {
			return nil, fmt.Errorf("snapshot: %d element-count axes exceeds %d", n, maxCodecOrder)
		}
		p.ElemCounts = make([][]int32, 0, n)
		for i := uint64(0); i < n && r.Err() == nil; i++ {
			p.ElemCounts = append(p.ElemCounts, r.I32s())
		}
	}
	if r.U8() == 1 {
		n := r.U64()
		if n > uint64(maxCodecOrder) {
			return nil, fmt.Errorf("snapshot: %d sketch axes exceeds %d", n, maxCodecOrder)
		}
		p.Sketches = make([][]uint64, 0, n)
		for i := uint64(0); i < n && r.Err() == nil; i++ {
			p.Sketches = append(p.Sketches, r.U64s())
		}
	}

	nCorr := r.U64()
	if nCorr > uint64(maxCodecOrder) {
		return nil, fmt.Errorf("snapshot: %d corr accumulators exceeds %d", nCorr, maxCodecOrder)
	}
	p.CorrOff = make([][]int32, 0, nCorr)
	p.CorrRest = make([][]uint64, 0, nCorr)
	for i := uint64(0); i < nCorr && r.Err() == nil; i++ {
		p.CorrOff = append(p.CorrOff, r.I32s())
		p.CorrRest = append(p.CorrRest, r.U64s())
	}

	p.TileKeys = r.U64s()
	p.TileNNZ = r.I32s()
	p.TileFP = r.I32s()
	nFib := r.U64()
	if nFib > uint64(maxCodecOrder) {
		return nil, fmt.Errorf("snapshot: %d fiber levels exceeds %d", nFib, maxCodecOrder)
	}
	p.TileFibers = make([][]int32, 0, nFib)
	for i := uint64(0); i < nFib && r.Err() == nil; i++ {
		p.TileFibers = append(p.TileFibers, r.I32s())
	}
	p.MicroKeys = r.U64s()
	p.MicroNNZ = r.I32s()
	p.MicroFP = r.I32s()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if r.Remaining() != 0 {
		return nil, fmt.Errorf("snapshot: %d stray bytes after partial section", r.Remaining())
	}
	// Validate enforces every cross-field invariant (key ordering, offset
	// monotonicity, entry-count conservation), so a decoded partial is
	// safe to Merge and Finalize without re-deriving anything.
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// --- RISK ---------------------------------------------------------------

func encodeRisk(m *RiskMeta) []byte {
	b := wire.AppendU64(nil, riskMetaVersion)
	b = wire.AppendF64(b, m.OverflowTarget)
	b = wire.AppendF64(b, m.PredictedOverflowRate)
	return appendOptional(b, m.Calibrated)
}

func decodeRisk(payload []byte) (*RiskMeta, error) {
	r := wire.NewReader(payload)
	ver := r.U64()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if ver != riskMetaVersion {
		return nil, fmt.Errorf("snapshot: RISK section version %d (this reader supports %d)", ver, riskMetaVersion)
	}
	m := &RiskMeta{
		OverflowTarget:        r.F64(),
		PredictedOverflowRate: r.F64(),
		Calibrated:            r.U8() == 1,
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	if r.Remaining() != 0 {
		return nil, fmt.Errorf("snapshot: %d stray bytes after risk section", r.Remaining())
	}
	if m.OverflowTarget < 0 || m.OverflowTarget >= 1 {
		return nil, fmt.Errorf("snapshot: RISK overflow target %v outside [0, 1)", m.OverflowTarget)
	}
	return m, nil
}

// --- Content addresses ---------------------------------------------------

// TensorID returns the content address of a tensor: "sha256:" + the hex
// SHA-256 of the canonical (sorted, deduplicated) COO encoding. The
// input is not modified; an unnormalized tensor is canonicalized on a
// clone first, so equal tensor *contents* always produce equal IDs
// regardless of entry order or pending duplicates.
func TensorID(t *tensor.COO) (string, error) {
	c := t.Clone()
	c.Dedup()
	payload, err := encodeTensor(c)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(payload)
	return "sha256:" + hex.EncodeToString(sum[:]), nil
}

// StatsKey derives the content address of a statistics artifact from the
// tensor ID and the collection parameters that shape it: the base tile
// dimensions, the CSF level order, and the micro-summary divisor.
func StatsKey(tensorID string, tileDims, order []int, microDiv int) string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "stats|%s|%v|%v|%d", tensorID, tileDims, order, microDiv)
	sum := sha256.Sum256(b.Bytes())
	return "sha256:" + hex.EncodeToString(sum[:])
}

// PartialKey derives the content address of a mergeable statistics
// accumulator (a stats.Partial artifact) from the tensor ID and the
// collection frame — the same parameters StatsKey hashes, under a
// distinct prefix so finalized and accumulator artifacts never collide.
func PartialKey(tensorID string, tileDims, order []int, microDiv int) string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "partial|%s|%v|%v|%d", tensorID, tileDims, order, microDiv)
	sum := sha256.Sum256(b.Bytes())
	return "sha256:" + hex.EncodeToString(sum[:])
}

// ResponseKey derives the content address of a cached service response
// from the endpoint name and the canonicalized request body.
func ResponseKey(endpoint string, canonicalRequest []byte) string {
	h := sha256.New()
	io.WriteString(h, "resp|"+endpoint+"|")
	h.Write(canonicalRequest)
	return "sha256:" + hex.EncodeToString(h.Sum(nil))
}
