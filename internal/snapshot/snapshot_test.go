package snapshot

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"reflect"
	"testing"

	"d2t2/internal/gen"
	"d2t2/internal/stats"
	"d2t2/internal/tensor"
)

// testArtifact builds a small deterministic artifact with every section
// populated: a generated matrix, its conservative tiling, and the full
// collected statistics bundle.
func testArtifact(t testing.TB) *Artifact {
	t.Helper()
	d, err := gen.ByLabel("C")
	if err != nil {
		t.Fatalf("ByLabel: %v", err)
	}
	m := d.Build(1 << 20) // clamps to the generator's 64x64 floor
	st, tiled, err := stats.Collect(m, []int{16, 16}, nil, &stats.Options{MicroDiv: 8})
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	return &Artifact{
		Tensor:   m,
		Tiled:    tiled,
		Stats:    st,
		Response: []byte(`{"predictedMB":1.5}` + "\n"),
	}
}

func TestRoundTripByteIdentical(t *testing.T) {
	a := testArtifact(t)
	first, err := EncodeBytes(a)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := DecodeBytes(first)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	second, err := EncodeBytes(got)
	if err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("decode/encode is not byte-identical: %d vs %d bytes", len(first), len(second))
	}

	if !reflect.DeepEqual(got.Tensor, a.Tensor) {
		t.Errorf("tensor did not round-trip")
	}
	if !bytes.Equal(got.Response, a.Response) {
		t.Errorf("response did not round-trip")
	}
	if !reflect.DeepEqual(got.Stats.Portable(), a.Stats.Portable()) {
		t.Errorf("statistics bundle did not round-trip")
	}
	if got.Tiled.NNZ != a.Tiled.NNZ || got.Tiled.MaxFootprint != a.Tiled.MaxFootprint ||
		len(got.Tiled.Tiles) != len(a.Tiled.Tiles) {
		t.Errorf("tiled tensor did not round-trip: nnz %d/%d tiles %d/%d",
			got.Tiled.NNZ, a.Tiled.NNZ, len(got.Tiled.Tiles), len(a.Tiled.Tiles))
	}
}

// TestPrefixes checks the framing invariant: any strict prefix of a
// snapshot either fails to decode or — when it ends exactly on a section
// boundary — decodes to an artifact whose re-encoding is that prefix.
func TestPrefixes(t *testing.T) {
	full, err := EncodeBytes(testArtifact(t))
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	for i := 0; i < len(full); i++ {
		a, err := DecodeBytes(full[:i])
		if err != nil {
			continue
		}
		re, err := EncodeBytes(a)
		if err != nil {
			t.Fatalf("prefix %d decoded but re-encode failed: %v", i, err)
		}
		if !bytes.Equal(re, full[:i]) {
			t.Fatalf("prefix %d decoded to an artifact that re-encodes differently", i)
		}
	}
}

func TestDecodeTruncatedAndCorrupted(t *testing.T) {
	full, err := EncodeBytes(testArtifact(t))
	if err != nil {
		t.Fatalf("encode: %v", err)
	}

	if _, err := DecodeBytes(full[:5]); !errors.Is(err, ErrTruncated) {
		t.Errorf("short header: got %v, want ErrTruncated", err)
	}
	if _, err := DecodeBytes(full[:len(full)-1]); err == nil {
		t.Errorf("clipped final CRC decoded without error")
	}

	bad := append([]byte(nil), full...)
	bad[0] = 'X'
	if _, err := DecodeBytes(bad); err == nil {
		t.Errorf("bad magic decoded without error")
	}

	bad = append([]byte(nil), full...)
	bad[len(Magic)] = 99 // format version
	if _, err := DecodeBytes(bad); err == nil {
		t.Errorf("unsupported version decoded without error")
	}

	// Flip one payload byte inside the first section; its CRC must catch it.
	bad = append([]byte(nil), full...)
	bad[len(Magic)+4+12] ^= 0x40
	if _, err := DecodeBytes(bad); err == nil {
		t.Errorf("corrupted payload decoded without error")
	}
}

func TestDuplicateSectionRejected(t *testing.T) {
	one, err := EncodeBytes(&Artifact{Response: []byte("x")})
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	section := one[len(Magic)+4:]
	if _, err := DecodeBytes(append(append([]byte(nil), one...), section...)); err == nil {
		t.Fatalf("duplicate RESP section decoded without error")
	}
}

func TestUnknownSectionSkipped(t *testing.T) {
	base, err := EncodeBytes(&Artifact{Response: []byte("keep")})
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	payload := []byte("from the future")
	ext := append([]byte(nil), base...)
	ext = append(ext, "FUTR"...)
	ext = binary.LittleEndian.AppendUint64(ext, uint64(len(payload)))
	ext = append(ext, payload...)
	ext = binary.LittleEndian.AppendUint32(ext, crc32.ChecksumIEEE(payload))

	a, err := DecodeBytes(ext)
	if err != nil {
		t.Fatalf("unknown section not skipped: %v", err)
	}
	if string(a.Response) != "keep" {
		t.Fatalf("known section lost while skipping unknown one")
	}

	// The unknown section's CRC is still verified.
	ext[len(ext)-6] ^= 1 // inside FUTR payload
	if _, err := DecodeBytes(ext); err == nil {
		t.Fatalf("corrupted unknown section decoded without error")
	}
}

func TestTensorIDCanonical(t *testing.T) {
	a := tensor.New(8, 8)
	a.Append([]int{1, 2}, 1)
	a.Append([]int{3, 4}, 2)

	b := tensor.New(8, 8)
	b.Append([]int{3, 4}, 2)
	b.Append([]int{1, 2}, 0.5)
	b.Append([]int{1, 2}, 0.5) // duplicate sums to the same value

	ida, err := TensorID(a)
	if err != nil {
		t.Fatalf("TensorID: %v", err)
	}
	idb, err := TensorID(b)
	if err != nil {
		t.Fatalf("TensorID: %v", err)
	}
	if ida != idb {
		t.Errorf("equal contents produced different IDs:\n%s\n%s", ida, idb)
	}
	if b.NNZ() != 3 {
		t.Errorf("TensorID mutated its input: nnz %d", b.NNZ())
	}

	c := tensor.New(8, 8)
	c.Append([]int{1, 2}, 1)
	idc, err := TensorID(c)
	if err != nil {
		t.Fatalf("TensorID: %v", err)
	}
	if idc == ida {
		t.Errorf("different contents produced equal IDs")
	}
}

func TestKeysDiffer(t *testing.T) {
	id := "sha256:0000000000000000000000000000000000000000000000000000000000000000"
	keys := map[string]bool{
		StatsKey(id, []int{16, 16}, []int{0, 1}, 8): true,
		StatsKey(id, []int{16, 16}, []int{1, 0}, 8): true,
		StatsKey(id, []int{32, 32}, []int{0, 1}, 8): true,
		StatsKey(id, []int{16, 16}, []int{0, 1}, 4): true,
		ResponseKey("optimize", []byte("{}")):       true,
		ResponseKey("predict", []byte("{}")):        true,
	}
	if len(keys) != 6 {
		t.Fatalf("key collision: %d distinct keys, want 6", len(keys))
	}
}

func BenchmarkSnapshotRoundTrip(b *testing.B) {
	a := testArtifact(b)
	enc, err := EncodeBytes(a)
	if err != nil {
		b.Fatalf("encode: %v", err)
	}
	b.SetBytes(int64(len(enc)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, err := EncodeBytes(a)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := DecodeBytes(buf); err != nil {
			b.Fatal(err)
		}
	}
}
