package d2t2

import (
	"context"
	"sync"

	"d2t2/internal/model"
	"d2t2/internal/optimizer"
	"d2t2/internal/snapshot"
	"d2t2/internal/stats"
	"d2t2/internal/tiling"
)

// sessionMicroDiv is the micro-summary divisor every session collection
// uses — the optimizer's default, so cached statistics are always valid
// for Optimize.
const sessionMicroDiv = 8

// StatsCache is an optional external artifact store a Session consults
// before collecting statistics and updates after — d2t2d plugs its
// content-addressed snapshot cache in here. Keys are content addresses
// (snapshot.StatsKey); implementations must be safe for concurrent use.
// The context is the calling request's: cache implementations that
// reach the network (d2t2d's cluster read-through) bound their I/O with
// it, and must treat a dead context as a miss rather than an error.
// The tiled tensor passed to StoreStats is the conservative tiling the
// statistics were collected from, so stores can persist the full
// snapshot artifact; it may be nil when only statistics are available.
type StatsCache interface {
	LoadStats(ctx context.Context, key string) (*stats.Stats, bool)
	StoreStats(ctx context.Context, key string, s *stats.Stats, tiled *tiling.TiledTensor)
}

// PartialCache is an optional extension of StatsCache for stores that
// can hold mergeable statistics accumulators (stats.Partial) alongside
// finalized bundles. Sessions type-assert their StatsCache against it:
// when present, Delta loads the base tensor's partial instead of
// re-collecting, and stores merged results through StoreMergedStats —
// a distinct entry point from StoreStats so stores that meter fresh
// collections (d2t2d's stats_collect_total counter) do not count a
// merge as a collection. Keys are content addresses
// (snapshot.PartialKey / snapshot.StatsKey).
type PartialCache interface {
	LoadPartial(ctx context.Context, key string) (*stats.Partial, bool)
	StorePartial(ctx context.Context, key string, p *stats.Partial)
	StoreMergedStats(ctx context.Context, key string, s *stats.Stats)
}

// Session is a reusable optimizer context: it memoizes the per-tensor
// tile-and-collect phase so repeated Optimize, Predict and Stats calls
// against the same inputs skip straight to the probabilistic model. With
// an external StatsCache the memo lives (bounded) in the cache;
// otherwise the session keeps collected statistics in-process for its
// lifetime. Tensors handed to a session must not be mutated afterwards —
// their content address is memoized by identity.
//
// A Session is safe for concurrent use. Concurrent first requests for
// the same tensor may collect twice; collection is deterministic, so
// both arrive at identical statistics.
type Session struct {
	// Workers bounds the worker pool the session's cold pipeline uses for
	// tiling, statistics collection and the shape sweep (0 = all cores).
	// Set it before the session is shared across goroutines; per-call
	// Options.Workers takes precedence when non-zero. Collection is
	// byte-identical at any worker count.
	Workers int

	cache StatsCache
	// calib accumulates calibration residual biases per workload class;
	// shared across the session so repeated Optimize calls with
	// Options.Calibrate converge on the measurement backend.
	calib *model.Calibration

	mu    sync.Mutex
	memo  map[string]*stats.Stats
	pmemo map[string]*stats.Partial
	ids   map[*Tensor]string
}

// NewSession returns a session backed by the given cache (nil for a
// purely in-process memo).
func NewSession(cache StatsCache) *Session {
	return &Session{
		cache: cache,
		calib: model.NewCalibration(),
		memo:  make(map[string]*stats.Stats),
		pmemo: make(map[string]*stats.Partial),
		ids:   make(map[*Tensor]string),
	}
}

// CalibrationRuns reports how many calibration runs the session has
// accumulated for k's workload class (analytic selects the analytic
// model's class). Useful for deciding whether further Calibrate passes
// are worth their measurement cost.
func (s *Session) CalibrationRuns(k *Kernel, analytic bool) int {
	mode := model.ModeExact
	if analytic {
		mode = model.ModeAnalytic
	}
	return s.calib.Runs(optimizer.CalibClass(k.expr, mode))
}

// CalibrationBias returns the session's learned residual bias for k's
// workload class — 1 when the class was never calibrated, so applying
// it is always safe.
func (s *Session) CalibrationBias(k *Kernel, analytic bool) float64 {
	mode := model.ModeExact
	if analytic {
		mode = model.ModeAnalytic
	}
	return s.calib.Bias(optimizer.CalibClass(k.expr, mode))
}

// TensorID returns the tensor's content address ("sha256:..." of the
// canonical COO encoding), memoized per tensor.
func (s *Session) TensorID(t *Tensor) (string, error) {
	s.mu.Lock()
	if id, ok := s.ids[t]; ok {
		s.mu.Unlock()
		return id, nil
	}
	s.mu.Unlock()
	id, err := snapshot.TensorID(t.coo)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	s.ids[t] = id
	s.mu.Unlock()
	return id, nil
}

// statsFor returns the statistics for t at the given base tiling and
// level order, consulting the session memo or external cache before
// collecting. A cancelled ctx aborts the collection (the context's
// error is returned) without storing anything — the memo and cache only
// ever hold completed collections.
func (s *Session) statsFor(ctx context.Context, t *Tensor, tileDims, order []int) (*stats.Stats, error) {
	id, err := s.TensorID(t)
	if err != nil {
		return nil, err
	}
	key := snapshot.StatsKey(id, tileDims, order, sessionMicroDiv)
	if s.cache != nil {
		if st, ok := s.cache.LoadStats(ctx, key); ok {
			return st, nil
		}
	} else {
		s.mu.Lock()
		st := s.memo[key]
		s.mu.Unlock()
		if st != nil {
			return st, nil
		}
	}
	st, tt, err := stats.CollectCtx(ctx, t.coo, tileDims, order,
		&stats.Options{MicroDiv: sessionMicroDiv, Workers: s.Workers})
	if err != nil {
		return nil, err
	}
	if s.cache != nil {
		s.cache.StoreStats(ctx, key, st, tt)
	} else {
		s.mu.Lock()
		s.memo[key] = st
		s.mu.Unlock()
	}
	return st, nil
}

// Optimize runs the D2T2 pipeline like the package-level Optimize, but
// sources per-input statistics through the session: the expensive
// tile-and-collect phase runs at most once per (tensor, base tile,
// level order) across every call sharing the session — warm calls go
// straight to the shape/size search.
func (s *Session) Optimize(k *Kernel, inputs Inputs, opts Options) (*Plan, error) {
	return s.OptimizeCtx(context.Background(), k, inputs, opts)
}

// OptimizeCtx is Optimize with cooperative cancellation: a cancelled or
// deadline-expired ctx stops the tile-and-collect phase, the shape
// sweep and the size growth at their next work-item boundary and
// returns the context's error. The d2t2d service routes request
// contexts through here so an abandoned request stops claiming CPU. A
// never-cancelled ctx yields exactly Optimize's byte-identical plan.
func (s *Session) OptimizeCtx(ctx context.Context, k *Kernel, inputs Inputs, opts Options) (*Plan, error) {
	o := opts.lower()
	if o.Workers == 0 {
		o.Workers = s.Workers
	}
	if o.Calibrate {
		// Only calibrated optimizes see the shared residual store: plain
		// requests stay pure functions of their inputs (cacheable).
		o.Calibration = s.calib
	}
	base, err := o.ConservativeBase(k.expr)
	if err != nil {
		return nil, err
	}
	pre, err := s.precollect(ctx, k, inputs, base)
	if err != nil {
		return nil, err
	}
	o.Precollected = pre
	res, err := optimizer.OptimizeCtx(ctx, k.expr, inputs.lower(), o)
	if err != nil {
		return nil, err
	}
	return newPlan(res, k, inputs, o.Workers, o.BufferWords), nil
}

// PrecollectCtx runs only the tile-and-collect phase OptimizeCtx would
// run for k's inputs — warming the session (and its cache) without the
// shape search. d2t2d's batch endpoint calls this once per group of
// jobs sharing a tensor, so N batched jobs trigger exactly one
// statistics collection before the per-job searches run.
func (s *Session) PrecollectCtx(ctx context.Context, k *Kernel, inputs Inputs, opts Options) error {
	o := opts.lower()
	base, err := o.ConservativeBase(k.expr)
	if err != nil {
		return err
	}
	_, err = s.precollect(ctx, k, inputs, base)
	return err
}

// precollect warms and returns the statistics for every distinct input
// of k at an order-matched square base tiling, in the kernel's level
// order for each reference — the exact frame OptimizeCtx consumes.
func (s *Session) precollect(ctx context.Context, k *Kernel, inputs Inputs, base int) (map[string]*stats.Stats, error) {
	pre := make(map[string]*stats.Stats)
	for _, ref := range k.expr.Inputs() {
		if _, done := pre[ref.Name]; done {
			continue
		}
		t, ok := inputs[ref.Name]
		if !ok {
			return nil, errMissing(ref.Name)
		}
		dims := make([]int, len(ref.Indices))
		for a := range dims {
			dims[a] = base
		}
		st, err := s.statsFor(ctx, t, dims, k.expr.LevelOrder(ref))
		if err != nil {
			return nil, err
		}
		pre[ref.Name] = st
	}
	return pre, nil
}

// Predict runs the probabilistic traffic model for one tile
// configuration, like the package-level PredictConfig, with statistics
// sourced through the session. Statistics are collected at a
// conservative square tiling of dimension statsTile.
func (s *Session) Predict(k *Kernel, inputs Inputs, cfg TileConfig, statsTile int) (float64, error) {
	return s.PredictCtx(context.Background(), k, inputs, cfg, statsTile)
}

// PredictCtx is Predict with cooperative cancellation of the underlying
// statistics collection (see OptimizeCtx).
func (s *Session) PredictCtx(ctx context.Context, k *Kernel, inputs Inputs, cfg TileConfig, statsTile int) (float64, error) {
	st := make(map[string]*stats.Stats)
	for _, ref := range k.expr.Inputs() {
		if _, done := st[ref.Name]; done {
			continue
		}
		t, ok := inputs[ref.Name]
		if !ok {
			return 0, errMissing(ref.Name)
		}
		dims := clampedSquare(t, statsTile, len(ref.Indices))
		one, err := s.statsFor(ctx, t, dims, k.expr.LevelOrder(ref))
		if err != nil {
			return 0, err
		}
		st[ref.Name] = one
	}
	return predictWithStats(k, cfg, st)
}

// Stats returns the collected statistics summary for one tensor at a
// conservative square tiling (natural level order), cached in the
// session like every other collection.
func (s *Session) Stats(t *Tensor, tile int) (*StatsSummary, error) {
	return s.StatsCtx(context.Background(), t, tile)
}

// StatsCtx is Stats with cooperative cancellation of the underlying
// collection (see OptimizeCtx).
func (s *Session) StatsCtx(ctx context.Context, t *Tensor, tile int) (*StatsSummary, error) {
	dims := clampedSquare(t, tile, t.Order())
	order := make([]int, t.Order())
	for a := range order {
		order[a] = a
	}
	st, err := s.statsFor(ctx, t, dims, order)
	if err != nil {
		return nil, err
	}
	return summarize(st, dims), nil
}

// clampedSquare returns an order-n square tiling of side tile, clamped
// per axis to the tensor's dimensions.
func clampedSquare(t *Tensor, tile, n int) []int {
	dims := make([]int, n)
	for a := range dims {
		dims[a] = tile
		if a < len(t.coo.Dims) && dims[a] > t.coo.Dims[a] {
			dims[a] = t.coo.Dims[a]
		}
	}
	return dims
}
