// Package d2t2 is Data-Driven Tensor Tiling: a reproduction of "A
// Probabilistic Perspective on Tiling Sparse Tensor Algebra" (MICRO 2025).
//
// Given a sparse tensor-algebra kernel in tensor index notation, its
// input tensors, and an accelerator buffer budget, D2T2:
//
//  1. tiles the inputs conservatively and collects occupancy statistics
//     from the compressed-sparse-fiber structures,
//  2. predicts memory traffic for candidate tile shapes with a
//     probabilistic model,
//  3. picks a non-uniform rectangular tile configuration that minimizes
//     predicted traffic, then grows it while every input tile is still
//     guaranteed to fit the buffer.
//
// The package also bundles the paper's baselines (Conservative,
// Prescient, Tailors overbooking, a DRT dynamic-tiling simulator), a
// measurement backend that executes tiled kernels and reports exact
// traffic, and machine models for an Extensor-like accelerator and the
// Opal CGRA.
//
// Quick start:
//
//	a, _ := d2t2.FromMatrixMarket(f)         // or d2t2.Dataset("C", 32)
//	b := a.Transpose()
//	k, _ := d2t2.ParseKernel("C(i,j) = A(i,k) * B(k,j) | order: i,k,j")
//	plan, _ := d2t2.Optimize(k, d2t2.Inputs{"A": a, "B": b},
//	    d2t2.Options{BufferWords: d2t2.Extensor().InputBufferWords})
//	report, _ := plan.Measure()
//	fmt.Println(plan.Config, report.TotalMB())
package d2t2

import (
	"context"
	"fmt"
	"io"

	"d2t2/internal/accel"
	"d2t2/internal/einsum"
	"d2t2/internal/exec"
	"d2t2/internal/gen"
	"d2t2/internal/mmio"
	"d2t2/internal/model"
	"d2t2/internal/optimizer"
	"d2t2/internal/par"
	"d2t2/internal/schemes"
	"d2t2/internal/tensor"
	"d2t2/internal/tiling"
)

// Tensor is a sparse tensor in coordinate form.
type Tensor struct {
	coo *tensor.COO
}

// NewTensor creates an empty sparse tensor with the given dimensions.
func NewTensor(dims ...int) *Tensor {
	return &Tensor{coo: tensor.New(dims...)}
}

// Set appends a nonzero entry. Duplicate coordinates are summed when the
// tensor is next normalized (any library call normalizes as needed).
func (t *Tensor) Set(coord []int, val float64) { t.coo.Append(coord, val) }

// Dims returns the dimension sizes.
func (t *Tensor) Dims() []int { return append([]int(nil), t.coo.Dims...) }

// NNZ returns the number of stored entries.
func (t *Tensor) NNZ() int { return t.coo.NNZ() }

// Order returns the number of dimensions.
func (t *Tensor) Order() int { return t.coo.Order() }

// Entry returns the coordinates and value of stored entry p.
func (t *Tensor) Entry(p int) ([]int, float64) { return t.coo.At(p), t.coo.Vals[p] }

// Transpose returns the transposed matrix (panics on non-matrices).
func (t *Tensor) Transpose() *Tensor { return &Tensor{coo: t.coo.Transpose()} }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor { return &Tensor{coo: t.coo.Clone()} }

// Normalize sorts entries and combines duplicates in place.
func (t *Tensor) Normalize() { t.coo.Dedup() }

// Spy renders an ASCII occupancy plot of a matrix (density glyphs per
// grid cell) — useful for eyeballing the structure the optimizer reacts
// to.
func (t *Tensor) Spy(width, height int) string { return t.coo.Spy(width, height) }

// FromMatrixMarket reads a Matrix Market (.mtx) stream.
func FromMatrixMarket(r io.Reader) (*Tensor, error) {
	m, err := mmio.ReadMatrixMarket(r)
	if err != nil {
		return nil, err
	}
	return &Tensor{coo: m}, nil
}

// ToMatrixMarket writes the matrix in Matrix Market format.
func (t *Tensor) ToMatrixMarket(w io.Writer) error { return mmio.WriteMatrixMarket(w, t.coo) }

// FromTNS reads a FROSTT (.tns) stream; dims nil infers sizes.
func FromTNS(r io.Reader, dims []int) (*Tensor, error) {
	m, err := mmio.ReadTNS(r, dims)
	if err != nil {
		return nil, err
	}
	return &Tensor{coo: m}, nil
}

// ToTNS writes the tensor in FROSTT format.
func (t *Tensor) ToTNS(w io.Writer) error { return mmio.WriteTNS(w, t.coo) }

// FromStream reads a tensor from r, sniffing the on-disk format from the
// stream itself (Matrix Market banner vs. FROSTT lines). This is the
// ingest path of the d2t2d service: uploads are parsed straight off the
// wire, never spooled to a temporary file.
func FromStream(r io.Reader) (*Tensor, error) {
	m, err := mmio.ReadAny(r)
	if err != nil {
		return nil, err
	}
	return &Tensor{coo: m}, nil
}

// COO returns the tensor's underlying coordinate storage — shared, not
// copied; callers must treat it as read-only. In-module service code
// (internal/serve) uses it to hand tensors to the snapshot codec.
func (t *Tensor) COO() *tensor.COO { return t.coo }

// FromCOO wraps coordinate storage decoded from a snapshot artifact as a
// public Tensor. The storage is shared, not copied, and must not be
// mutated afterwards.
func FromCOO(c *tensor.COO) *Tensor { return &Tensor{coo: c} }

// Dataset synthesizes the named stand-in for one of the paper's
// evaluation datasets (labels A..W of Table 2, or Table 5 names such as
// "bwm2000"). scale divides the original dimensions; 1 is paper-sized.
func Dataset(label string, scale int) (*Tensor, error) {
	d, err := gen.ByLabel(label)
	if err != nil {
		return nil, err
	}
	return &Tensor{coo: d.Build(scale)}, nil
}

// Kernel is a parsed tensor-algebra statement with a dataflow order.
type Kernel struct {
	expr *einsum.Expr
}

// ParseKernel parses tensor index notation such as
// "C(i,j) = A(i,k) * B(k,j) | order: i,k,j".
func ParseKernel(s string) (*Kernel, error) {
	e, err := einsum.Parse(s)
	if err != nil {
		return nil, err
	}
	return &Kernel{expr: e}, nil
}

// Gustavson returns the SpMSpM-ikj kernel (row-wise product).
func Gustavson() *Kernel { return &Kernel{expr: einsum.SpMSpMIKJ()} }

// InnerProduct returns the SpMSpM-ijk kernel (A times Bᵀ layout).
func InnerProduct() *Kernel { return &Kernel{expr: einsum.SpMSpMIJK()} }

// TTM returns the tensor-times-matrix kernel of the paper's Table 3.
func TTM() *Kernel { return &Kernel{expr: einsum.TTM()} }

// MTTKRP returns the order-3 MTTKRP kernel of the paper's Table 3.
func MTTKRP() *Kernel { return &Kernel{expr: einsum.MTTKRP3()} }

// SDDMM returns the sampled matrix-matrix product kernel
// E(i,j) = S(i,j)·ΣA(i,k)B(k,j).
func SDDMM() *Kernel { return &Kernel{expr: einsum.SDDMM()} }

// String returns the kernel in TIN syntax.
func (k *Kernel) String() string { return k.expr.String() }

// InputOrders returns the tensor order of each distinct input operand,
// keyed by operand name. Services use it to validate request inputs and
// to size default dense tile buffers without reaching into the einsum
// representation.
func (k *Kernel) InputOrders() map[string]int {
	out := make(map[string]int)
	for _, ref := range k.expr.Inputs() {
		out[ref.Name] = len(ref.Indices)
	}
	return out
}

// Inputs maps kernel tensor names to tensors.
type Inputs map[string]*Tensor

func (in Inputs) lower() map[string]*tensor.COO {
	out := make(map[string]*tensor.COO, len(in))
	for name, t := range in {
		out[name] = t.coo
	}
	return out
}

// TileConfig assigns a tile size to each index variable of a kernel.
type TileConfig map[string]int

// Options configures the optimizer.
type Options struct {
	// BufferWords is the accelerator's input tile buffer in 4-byte words
	// (use Extensor().InputBufferWords or Opal().InputBufferWords).
	BufferWords int
	// Analytic selects the paper-faithful analytic statistics path
	// instead of exact micro-tile re-evaluation.
	Analytic bool
	// DisableCorrs turns off the output-reuse correlation discount.
	DisableCorrs bool
	// SkipResize stops after shape optimization.
	SkipResize bool
	// Workers bounds the worker pool for the cold pipeline — per-tensor
	// tiling + statistics collection, partitioned collection passes, and
	// the parallel shape sweep (0 = all cores). The result is
	// byte-identical at any worker count.
	Workers int
	// OverflowTarget enables risk-aware sizing (Tailors-style
	// overbooking): the acceptable predicted probability that a fetched
	// input tile overflows the buffer. 0 — the default — keeps the
	// worst-case conservative pipeline, byte-identical to previous
	// releases; must be in [0, 1). See Plan.Risk for the outcome.
	OverflowTarget float64
	// Calibrate runs the measurement backend on the chosen config and
	// folds the measured-vs-predicted traffic residual back into the
	// model (per workload class). Through a Session the residual store
	// is shared, so repeated calibrated optimizes converge.
	Calibrate bool
}

// RiskSummary reports a plan's risk-aware sizing decision: the
// requested overflow target, the percentile seed, the predicted
// overflow rate and buffer utilization at the chosen config, and any
// calibration outcome.
type RiskSummary = optimizer.RiskReport

// CalibrationSummary is the outcome of one calibration run: measured vs
// predicted traffic, the residual, and the updated workload-class bias.
type CalibrationSummary = optimizer.CalibrationReport

// Plan is an optimized tiling scheme bound to its kernel and inputs.
type Plan struct {
	// Config is the chosen per-index tile configuration.
	Config TileConfig
	// BaseTile is the conservative square tile the pipeline started from;
	// RF the chosen reorder factor (shape aspect); TileFactor the Eq. 22
	// size-growth seed.
	BaseTile   int
	RF         float64
	TileFactor int
	// PredictedMB is the model's traffic estimate for Config.
	PredictedMB float64
	// Risk summarizes the risk-aware sizing decision; nil on the
	// conservative path (OverflowTarget 0, no calibration).
	Risk *RiskSummary

	kernel *Kernel
	inputs Inputs
	// workers is the worker-pool bound the plan was optimized with
	// (0 = all cores); Measure reuses it for the measurement backend.
	workers int
	// bufferWords is the optimization's buffer budget; overbooked plans
	// measure with it so overflow traffic is metered honestly.
	bufferWords int
}

// lower converts the public options to the optimizer's.
func (opts Options) lower() optimizer.Options {
	o := optimizer.Options{
		BufferWords:    opts.BufferWords,
		DisableCorrs:   opts.DisableCorrs,
		SkipResize:     opts.SkipResize,
		Workers:        opts.Workers,
		OverflowTarget: opts.OverflowTarget,
		Calibrate:      opts.Calibrate,
	}
	if opts.Analytic {
		o.Mode = model.ModeAnalytic
	}
	return o
}

// newPlan wraps an optimizer result as a public Plan.
func newPlan(res *optimizer.Result, k *Kernel, inputs Inputs, workers, bufferWords int) *Plan {
	cfg := make(TileConfig, len(res.Config))
	for ix, v := range res.Config {
		cfg[ix] = v
	}
	return &Plan{
		Config:      cfg,
		BaseTile:    res.BaseTile,
		RF:          res.RF,
		TileFactor:  res.TileFactor,
		PredictedMB: res.Predicted.Total() * 4 / (1 << 20),
		Risk:        res.Risk,
		kernel:      k,
		inputs:      inputs,
		workers:     workers,
		bufferWords: bufferWords,
	}
}

// Optimize runs the D2T2 pipeline and returns the chosen plan.
func Optimize(k *Kernel, inputs Inputs, opts Options) (*Plan, error) {
	return OptimizeCtx(context.Background(), k, inputs, opts)
}

// OptimizeCtx is Optimize with cooperative cancellation: a cancelled or
// deadline-expired ctx stops the pipeline at its next work-item
// boundary (tile group, collection chunk, sweep candidate, growth
// doubling) and returns the context's error. A never-cancelled ctx
// yields exactly Optimize's byte-identical plan.
func OptimizeCtx(ctx context.Context, k *Kernel, inputs Inputs, opts Options) (*Plan, error) {
	res, err := optimizer.OptimizeCtx(ctx, k.expr, inputs.lower(), opts.lower())
	if err != nil {
		return nil, err
	}
	return newPlan(res, k, inputs, opts.Workers, opts.BufferWords), nil
}

// OptimizeDataflow extends Optimize by also choosing the dataflow order:
// every permutation of the kernel's index variables is priced with the
// traffic model and the cheapest optimized plan is returned, along with
// the chosen order. The returned plan measures and executes under that
// order.
func OptimizeDataflow(k *Kernel, inputs Inputs, opts Options) (*Plan, []string, error) {
	res, _, err := optimizer.SelectDataflow(k.expr, inputs.lower(), nil, opts.lower())
	if err != nil {
		return nil, nil, err
	}
	plan := newPlan(res, &Kernel{expr: res.Expr}, inputs, opts.Workers, opts.BufferWords)
	return plan, append([]string(nil), res.Expr.Order...), nil
}

// TrafficReport is the measured cost of executing a tiled kernel.
type TrafficReport struct {
	// InputWords per tensor name and OutputWords, in 4-byte words.
	InputWords  map[string]int64
	OutputWords int64
	// TileIterations and MACs characterize the execution.
	TileIterations int64
	MACs           int64

	traffic exec.Traffic
}

// TotalWords returns input + output traffic in words.
func (r *TrafficReport) TotalWords() int64 { return r.traffic.Total() }

// OverflowRate returns the fraction of input tile fetches that
// overflowed the modeled buffer — 0 unless the measurement ran under an
// overbooked buffer (a plan with a positive OverflowTarget).
func (r *TrafficReport) OverflowRate() float64 {
	if r.traffic.InputFetches == 0 {
		return 0
	}
	return float64(r.traffic.OverflowFetches) / float64(r.traffic.InputFetches)
}

// TotalMB returns total traffic in megabytes.
func (r *TrafficReport) TotalMB() float64 { return r.traffic.TotalMB() }

// Measure tiles the plan's inputs with its configuration and executes the
// kernel on the measurement backend, returning exact traffic.
func (p *Plan) Measure() (*TrafficReport, error) {
	return p.MeasureCtx(context.Background())
}

// MeasureCtx is Measure with cooperative cancellation of both the
// retiling pass and the measurement itself: the backend checks ctx
// between outer-tile work units, so a deadline or client disconnect
// stops an executing measurement at the next tile boundary instead of
// running it to completion. The measurement runs on the worker pool
// the plan was optimized with (0 = all cores) — traffic counters are
// exact integers and merge identically at any worker count.
func (p *Plan) MeasureCtx(ctx context.Context) (*TrafficReport, error) {
	tiled, err := optimizer.TileAllCtx(ctx, p.kernel.expr, p.inputs.lower(), model.Config(p.Config), p.workers)
	if err != nil {
		return nil, err
	}
	eo := &exec.Options{Workers: par.Workers(p.workers)}
	if p.Risk != nil && p.Risk.OverflowTarget > 0 {
		// Overbooked plans measure under the buffer model they were
		// costed with, so overflow re-streaming shows up in the traffic.
		eo.InputBufferWords = p.bufferWords
		eo.OverflowExtra = p.Risk.OverflowExtra
	}
	res, err := exec.MeasureCtx(ctx, p.kernel.expr, tiled, eo)
	if err != nil {
		return nil, err
	}
	return newReport(&res.Traffic), nil
}

// Execute runs the kernel and returns the result tensor along with the
// traffic report.
func (p *Plan) Execute() (*Tensor, *TrafficReport, error) {
	return executeConfig(p.kernel, p.inputs, p.Config)
}

// MeasureConfig measures an arbitrary tile configuration.
func MeasureConfig(k *Kernel, inputs Inputs, cfg TileConfig) (*TrafficReport, error) {
	tiled, err := optimizer.TileAll(k.expr, inputs.lower(), model.Config(cfg))
	if err != nil {
		return nil, err
	}
	res, err := exec.Measure(k.expr, tiled, nil)
	if err != nil {
		return nil, err
	}
	return newReport(&res.Traffic), nil
}

func executeConfig(k *Kernel, inputs Inputs, cfg TileConfig) (*Tensor, *TrafficReport, error) {
	tiled, err := optimizer.TileAll(k.expr, inputs.lower(), model.Config(cfg))
	if err != nil {
		return nil, nil, err
	}
	res, err := exec.Measure(k.expr, tiled, &exec.Options{CollectOutput: true})
	if err != nil {
		return nil, nil, err
	}
	return &Tensor{coo: res.Out}, newReport(&res.Traffic), nil
}

func newReport(t *exec.Traffic) *TrafficReport {
	r := &TrafficReport{
		InputWords:     make(map[string]int64, len(t.Input)),
		OutputWords:    t.Output,
		TileIterations: t.TileIterations,
		MACs:           t.MACs,
		traffic:        *t,
	}
	for name, w := range t.Input {
		r.InputWords[name] = w
	}
	return r
}

// ConservativeConfig returns the square scheme that fits a dense tile.
func ConservativeConfig(k *Kernel, bufferWords int) TileConfig {
	cfg := schemes.Conservative(k.expr, bufferWords)
	out := make(TileConfig, len(cfg))
	for ix, v := range cfg {
		out[ix] = v
	}
	return out
}

// PrescientConfig returns the largest square scheme whose actual tiles
// fit the buffer (the oracle baseline of the paper).
func PrescientConfig(k *Kernel, inputs Inputs, bufferWords int) (TileConfig, error) {
	cfg, err := schemes.Prescient(k.expr, inputs.lower(), bufferWords)
	if err != nil {
		return nil, err
	}
	out := make(TileConfig, len(cfg))
	for ix, v := range cfg {
		out[ix] = v
	}
	return out, nil
}

// Arch is an accelerator machine model.
type Arch = accel.Arch

// Extensor returns the Extensor-like machine of the paper's evaluation.
func Extensor() Arch { return accel.Extensor() }

// Opal returns the Opal CGRA machine of §6.4.
func Opal() Arch { return accel.Opal() }

// Runtime returns the modeled execution time in cycles of a measured
// traffic report on the given machine.
func Runtime(r *TrafficReport, a Arch) float64 { return accel.Cycles(&r.traffic, a) }

// Speedup returns reference runtime / target runtime on the machine.
func Speedup(reference, target *TrafficReport, a Arch) float64 {
	return accel.Speedup(&reference.traffic, &target.traffic, a)
}

// DenseTileWords returns the CSF footprint of a fully dense tile with
// the given per-axis dimensions — useful for sizing BufferWords.
func DenseTileWords(dims ...int) int { return tiling.DenseFootprintWords(dims) }

// EnergyModel holds per-event energy costs in picojoules; see
// DefaultEnergy for the conventional accelerator hierarchy.
type EnergyModel = accel.EnergyModel

// DefaultEnergy returns the standard DRAM≫SRAM≫MAC cost ratios.
func DefaultEnergy() EnergyModel { return accel.DefaultEnergy() }

// EnergyPJ estimates the energy of a measured execution in picojoules.
func EnergyPJ(r *TrafficReport, m EnergyModel) float64 {
	return accel.EnergyPJ(&r.traffic, m)
}

// Validate checks a tile configuration covers every kernel index.
func (k *Kernel) Validate(cfg TileConfig) error {
	for _, ix := range k.expr.Order {
		if cfg[ix] < 1 {
			return fmt.Errorf("d2t2: config misses index %q", ix)
		}
	}
	return nil
}

// MeasureConfigTraced is MeasureConfig with a CSV tile-event trace
// written to w (one line per fetch/write: event, tensor, outer
// coordinates, words).
func MeasureConfigTraced(k *Kernel, inputs Inputs, cfg TileConfig, w io.Writer) (*TrafficReport, error) {
	tiled, err := optimizer.TileAll(k.expr, inputs.lower(), model.Config(cfg))
	if err != nil {
		return nil, err
	}
	res, err := exec.Measure(k.expr, tiled, &exec.Options{Trace: w})
	if err != nil {
		return nil, err
	}
	return newReport(&res.Traffic), nil
}
