package d2t2

import (
	"context"
	"fmt"

	"d2t2/internal/snapshot"
	"d2t2/internal/stats"
)

// Delta is DeltaCtx with a background context.
func (s *Session) Delta(t, delta *Tensor, tile int) (*Tensor, *stats.DeltaReport, error) {
	return s.DeltaCtx(context.Background(), t, delta, tile)
}

// DeltaCtx appends a coordinate delta to t and returns the combined
// tensor, with statistics merged instead of re-collected: the session
// loads (or collects once, then caches) the mergeable partial for t at
// the Stats frame — square tiling of side `tile` clamped per axis,
// natural level order — folds the delta in with stats.ApplyDeltaCtx
// (only the touched tiles are re-summarized), finalizes, and stores the
// merged partial and statistics under the new tensor's content address.
// A following StatsCtx, PredictCtx or OptimizeCtx at that frame is warm.
// The merged statistics are byte-identical to a from-scratch collection
// on the combined tensor, at any worker count.
//
// t and delta must be Normalized and must not share coordinates — a
// collision would sum values and invalidate the purely additive entry
// statistics — and, like every tensor handed to a session, neither may
// be mutated afterwards. The returned report says how many tiles the
// delta touched out of the total, i.e. how much re-collection the merge
// avoided.
func (s *Session) DeltaCtx(ctx context.Context, t, delta *Tensor, tile int) (*Tensor, *stats.DeltaReport, error) {
	n := t.Order()
	if delta.Order() != n {
		return nil, nil, fmt.Errorf("d2t2: delta order %d, base order %d", delta.Order(), n)
	}
	for a := 0; a < n; a++ {
		if delta.coo.Dims[a] != t.coo.Dims[a] {
			return nil, nil, fmt.Errorf("d2t2: delta dims %v, base dims %v", delta.coo.Dims, t.coo.Dims)
		}
	}

	// Build the combined tensor first: the Dedup shrink check catches any
	// coordinate collision — delta vs base, intra-delta, or a base that
	// was never Normalized — before statistics work starts.
	concat := t.coo.Clone()
	coord := make([]int, n)
	for pos := 0; pos < delta.coo.NNZ(); pos++ {
		for a := 0; a < n; a++ {
			coord[a] = delta.coo.Crds[a][pos]
		}
		concat.Append(coord, delta.coo.Vals[pos])
	}
	concat.Dedup()
	if concat.NNZ() != t.coo.NNZ()+delta.coo.NNZ() {
		return nil, nil, fmt.Errorf("d2t2: delta collides on %d coordinates (or an input was not Normalized)",
			t.coo.NNZ()+delta.coo.NNZ()-concat.NNZ())
	}

	dims := clampedSquare(t, tile, n)
	order := make([]int, n)
	for a := range order {
		order[a] = a
	}
	oldID, err := s.TensorID(t)
	if err != nil {
		return nil, nil, err
	}
	oldKey := snapshot.PartialKey(oldID, dims, order, sessionMicroDiv)
	p := s.loadPartial(ctx, oldKey)
	if p == nil {
		p, err = stats.CollectPartialCtx(ctx, t.coo, dims, order,
			&stats.Options{MicroDiv: sessionMicroDiv, Workers: s.Workers})
		if err != nil {
			return nil, nil, err
		}
		s.storePartial(ctx, oldKey, p)
	}

	merged, rep, err := stats.ApplyDeltaCtx(ctx, p, t.coo, delta.coo, s.Workers)
	if err != nil {
		return nil, nil, err
	}
	st, err := merged.Finalize()
	if err != nil {
		return nil, nil, err
	}

	nt := FromCOO(concat)
	newID, err := s.TensorID(nt)
	if err != nil {
		return nil, nil, err
	}
	s.storePartial(ctx, snapshot.PartialKey(newID, dims, order, sessionMicroDiv), merged)
	s.storeMergedStats(ctx, snapshot.StatsKey(newID, dims, order, sessionMicroDiv), st)
	return nt, rep, nil
}

// loadPartial consults the cache's PartialCache extension when present,
// the in-process partial memo otherwise. A nil return is a miss.
func (s *Session) loadPartial(ctx context.Context, key string) *stats.Partial {
	if pc, ok := s.cache.(PartialCache); ok {
		if p, ok := pc.LoadPartial(ctx, key); ok {
			return p
		}
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pmemo[key]
}

func (s *Session) storePartial(ctx context.Context, key string, p *stats.Partial) {
	if pc, ok := s.cache.(PartialCache); ok {
		pc.StorePartial(ctx, key, p)
		return
	}
	s.mu.Lock()
	s.pmemo[key] = p
	s.mu.Unlock()
}

// storeMergedStats records finalized merged statistics so later lookups
// at the same frame are warm. It routes through StoreMergedStats when
// the cache offers it (so stores metering fresh collections don't count
// a merge), plain StoreStats otherwise.
func (s *Session) storeMergedStats(ctx context.Context, key string, st *stats.Stats) {
	if pc, ok := s.cache.(PartialCache); ok {
		pc.StoreMergedStats(ctx, key, st)
		return
	}
	if s.cache != nil {
		s.cache.StoreStats(ctx, key, st, nil)
		return
	}
	s.mu.Lock()
	s.memo[key] = st
	s.mu.Unlock()
}
