// Dataflow: let the traffic model choose the dataflow order too. The
// paper assumes the accelerator's loop order is given (§2); since the
// model prices any order, sweeping permutations is a natural extension —
// shown here for SpMSpM on two structurally different matrices.
//
// Run with: go run ./examples/dataflow
package main

import (
	"fmt"
	"log"

	"d2t2"
)

func main() {
	buffer := d2t2.DenseTileWords(64, 64)
	kernel, err := d2t2.ParseKernel("C(i,j) = A(i,k) * B(k,j) | order: i,k,j")
	if err != nil {
		log.Fatal(err)
	}

	for _, label := range []string{"A", "I"} { // grid vs power-law
		a, err := d2t2.Dataset(label, 64)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("dataset %s (%d nonzeros):\n%s\n\n", label, a.NNZ(), a.Spy(56, 18))
		inputs := d2t2.Inputs{"A": a, "B": a.Transpose()}

		// Fixed Gustavson order.
		fixed, err := d2t2.Optimize(kernel, inputs, d2t2.Options{BufferWords: buffer})
		if err != nil {
			log.Fatal(err)
		}
		fixedRep, err := fixed.Measure()
		if err != nil {
			log.Fatal(err)
		}

		// Model-chosen order over all six permutations.
		plan, order, err := d2t2.OptimizeDataflow(kernel, inputs, d2t2.Options{BufferWords: buffer})
		if err != nil {
			log.Fatal(err)
		}
		rep, err := plan.Measure()
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("  fixed i->k->j : config %v, measured %.2f MB\n", fixed.Config, fixedRep.TotalMB())
		fmt.Printf("  model-chosen  : order %v, config %v, measured %.2f MB\n\n",
			order, plan.Config, rep.TotalMB())
	}
}
