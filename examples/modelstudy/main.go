// Modelstudy: exercise the probabilistic traffic model directly — sweep
// tile shapes (reorder factors) for SpMSpM on matrices with different
// structure and compare predicted against measured traffic, the §5.3
// validation workflow of the paper.
//
// Run with: go run ./examples/modelstudy
package main

import (
	"fmt"
	"log"

	"d2t2"
)

func main() {
	kernel := d2t2.Gustavson()
	tile := 64

	for _, label := range []string{"A", "Q"} { // grid (correlated) vs uniform
		a, err := d2t2.Dataset(label, 64)
		if err != nil {
			log.Fatal(err)
		}
		inputs := d2t2.Inputs{"A": a, "B": a.Transpose()}
		st, err := d2t2.CollectStats(a, tile)
		if err != nil {
			log.Fatal(err)
		}
		dims := a.Dims()
		fmt.Printf("dataset %s: %dx%d nnz=%d  SizeTile=%.0f MaxTile=%d CorrSum(k)=%.2f\n",
			label, dims[0], dims[1], a.NNZ(), st.SizeTile, st.MaxTile, st.CorrSums[1])

		fmt.Printf("  %-22s %14s %14s %8s\n", "config (RF sweep)", "predicted MB", "measured MB", "err%")
		for _, rf := range []int{1, 2, 4, 8} {
			cfg := d2t2.TileConfig{"i": tile * rf, "k": tile / rf, "j": tile * rf}
			pred, err := d2t2.PredictConfig(kernel, inputs, cfg, tile)
			if err != nil {
				log.Fatal(err)
			}
			rep, err := d2t2.MeasureConfig(kernel, inputs, cfg)
			if err != nil {
				log.Fatal(err)
			}
			meas := rep.TotalMB()
			fmt.Printf("  i=%-5d k=%-4d j=%-5d %14.3f %14.3f %7.1f%%\n",
				cfg["i"], cfg["k"], cfg["j"], pred, meas, 100*(pred-meas)/meas)
		}
		fmt.Println()
	}
	fmt.Println("the model tracks shape trends; absolute error is largest for")
	fmt.Println("correlated A×Aᵀ operands, as the paper's §5.3 reports")
}
