// Tensorops: tile higher-order tensor kernels — TTM and MTTKRP — with
// D2T2 and compare against the Conservative square scheme, mirroring the
// paper's Table 4 workloads (FROSTT-style tensor × random matrices).
//
// Run with: go run ./examples/tensorops
package main

import (
	"fmt"
	"log"
	"math/rand"

	"d2t2"
)

func main() {
	// Nips3 stand-in at scale 48: an order-3 tensor.
	t3, err := d2t2.Dataset("W", 48)
	if err != nil {
		log.Fatal(err)
	}
	dims := t3.Dims()
	fmt.Printf("tensor: %dx%dx%d, %d nonzeros\n\n", dims[0], dims[1], dims[2], t3.NNZ())

	// Buffer sized for a dense 16^3 CSF tile.
	buffer := d2t2.DenseTileWords(16, 16, 16)

	// --- TTM: X(i,j,k) = Σ_l C(i,j,l)·B(k,l), order i→j→l→k ------------
	ttm := d2t2.TTM()
	maxDim := max(dims[0], dims[1])
	b := randomMatrix(1, maxDim, dims[2], 0.01)
	runKernel("TTM", ttm, d2t2.Inputs{"C": t3, "B": b}, buffer)

	// --- MTTKRP: D(i,j) = Σ_{k,l} A(i,k,l)·B(j,k)·C(j,l), i→k→l→j ------
	mttkrp := d2t2.MTTKRP()
	bm := randomMatrix(2, dims[0], dims[1], 0.01)
	cm := randomMatrix(3, dims[0], dims[2], 0.01)
	runKernel("MTTKRP-3", mttkrp, d2t2.Inputs{"A": t3, "B": bm, "C": cm}, buffer)
}

func runKernel(name string, k *d2t2.Kernel, inputs d2t2.Inputs, buffer int) {
	fmt.Printf("%s: %s\n", name, k)
	cons := d2t2.ConservativeConfig(k, buffer)
	consRep, err := d2t2.MeasureConfig(k, inputs, cons)
	if err != nil {
		log.Fatal(err)
	}
	plan, err := d2t2.Optimize(k, inputs, d2t2.Options{BufferWords: buffer})
	if err != nil {
		log.Fatal(err)
	}
	rep, err := plan.Measure()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  conservative: %v -> %.2f MB\n", cons, consRep.TotalMB())
	fmt.Printf("  d2t2:         %v -> %.2f MB\n", plan.Config, rep.TotalMB())
	fmt.Printf("  traffic improvement: %.2fx\n\n",
		float64(consRep.TotalWords())/float64(rep.TotalWords()))
}

// randomMatrix builds a uniformly random matrix with the given density.
func randomMatrix(seed int64, rows, cols int, density float64) *d2t2.Tensor {
	r := rand.New(rand.NewSource(seed))
	t := d2t2.NewTensor(rows, cols)
	nnz := int(density * float64(rows) * float64(cols))
	if nnz < 16 {
		nnz = 16
	}
	for i := 0; i < nnz; i++ {
		t.Set([]int{r.Intn(rows), r.Intn(cols)}, 1+r.Float64())
	}
	t.Normalize()
	return t
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
