// Hierarchy: tile for a two-level memory system — a large global buffer
// feeding small per-PE buffers, the Opal CGRA structure of the paper's
// §6.4. D2T2 optimizes each level: L2 tiles minimize DRAM traffic, L1
// tiles minimize global-buffer traffic inside every live L2 tile pair.
//
// Run with: go run ./examples/hierarchy
package main

import (
	"fmt"
	"log"

	"d2t2"
)

func main() {
	a, err := d2t2.Dataset("N", 8) // bcsstk17 stand-in (FEM stiffness)
	if err != nil {
		log.Fatal(err)
	}
	dims := a.Dims()
	fmt.Printf("input: %dx%d, %d nonzeros\n", dims[0], dims[1], a.NNZ())

	kernel := d2t2.Gustavson()
	inputs := d2t2.Inputs{"A": a, "B": a.Transpose()}
	l2 := d2t2.DenseTileWords(256, 256) // global buffer
	l1 := d2t2.DenseTileWords(32, 32)   // PE memory tile (Opal's 2 KB class)
	fmt.Printf("buffers: global %d KiB, PE %d KiB\n\n", l2*4/1024, l1*4/1024)

	plan, err := d2t2.OptimizeHierarchy(kernel, inputs, l2, l1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("L2 config (DRAM -> global): %v\n", plan.L2)
	fmt.Printf("L1 config (global -> PE):   %v\n\n", plan.L1)

	rep, err := plan.Measure()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("DRAM traffic:   %8.2f MB (%d L2 tile pairs)\n", rep.DRAM.TotalMB(), rep.Pairs)
	fmt.Printf("global traffic: %8.2f MB\n\n", rep.Global.TotalMB())

	// Compare against tiling DRAM directly at PE granularity.
	flat, err := d2t2.Optimize(kernel, inputs, d2t2.Options{BufferWords: l1})
	if err != nil {
		log.Fatal(err)
	}
	flatRep, err := flat.Measure()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("flat PE-granularity DRAM traffic: %.2f MB\n", flatRep.TotalMB())
	fmt.Printf("two-level DRAM reduction: %.2fx\n",
		flatRep.TotalMB()/rep.DRAM.TotalMB())
}
