// Quickstart: optimize the tiling of a sparse matrix multiplication with
// D2T2 and compare its measured memory traffic against the Conservative
// and Prescient baselines on an Extensor-like accelerator.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"d2t2"
)

func main() {
	// A ~5.9k x 5.9k circuit-like matrix (scircuit stand-in, scale 29).
	a, err := d2t2.Dataset("E", 29)
	if err != nil {
		log.Fatal(err)
	}
	dims := a.Dims()
	fmt.Printf("input: %dx%d sparse matrix, %d nonzeros\n", dims[0], dims[1], a.NNZ())

	// Gustavson's SpMSpM: C(i,j) = Σ_k A(i,k)·B(k,j), dataflow i→k→j.
	kernel := d2t2.Gustavson()
	inputs := d2t2.Inputs{"A": a, "B": a.Transpose()}

	// Target machine: a PE buffer that holds one dense 128x128 CSF tile.
	arch := d2t2.Extensor()
	buffer := arch.InputBufferWords
	fmt.Printf("kernel: %s\nbuffer: %d KiB\n\n", kernel, buffer*4/1024)

	// 1. The D2T2 pipeline: conservative tiling → statistics → shape
	//    search → conservative size growth.
	plan, err := d2t2.Optimize(kernel, inputs, d2t2.Options{BufferWords: buffer})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("D2T2 config: %v (base tile %d, RF %g)\n", plan.Config, plan.BaseTile, plan.RF)
	fmt.Printf("predicted traffic: %.2f MB\n\n", plan.PredictedMB)

	// 2. Execute the kernel with each scheme and measure exact traffic.
	d2Rep, err := plan.Measure()
	if err != nil {
		log.Fatal(err)
	}
	cons := d2t2.ConservativeConfig(kernel, buffer)
	consRep, err := d2t2.MeasureConfig(kernel, inputs, cons)
	if err != nil {
		log.Fatal(err)
	}
	pres, err := d2t2.PrescientConfig(kernel, inputs, buffer)
	if err != nil {
		log.Fatal(err)
	}
	presRep, err := d2t2.MeasureConfig(kernel, inputs, pres)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-14s %-24s %12s %12s\n", "scheme", "config", "traffic MB", "speedup")
	row := func(name string, cfg d2t2.TileConfig, rep *d2t2.TrafficReport) {
		fmt.Printf("%-14s %-24s %12.2f %11.2fx\n",
			name, short(cfg), rep.TotalMB(), d2t2.Speedup(consRep, rep, arch))
	}
	row("conservative", cons, consRep)
	row("prescient", pres, presRep)
	row("d2t2", plan.Config, d2Rep)

	// 3. The result tensor itself is available too.
	out, _, err := plan.Execute()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nC = A·Aᵀ has %d nonzeros\n", out.NNZ())
}

func short(cfg d2t2.TileConfig) string {
	return fmt.Sprintf("i=%d k=%d j=%d", cfg["i"], cfg["k"], cfg["j"])
}
