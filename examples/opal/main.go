// Opal: deploy D2T2-generated tilings to the Opal CGRA machine model
// (paper §6.4, Table 5): SpMSpM-ikj on the eight small SuiteSparse
// stand-ins with 2 KB memory tiles (32×32 conservative tiles), comparing
// modeled runtime against the Prescient square baseline.
//
// Run with: go run ./examples/opal
package main

import (
	"fmt"
	"log"

	"d2t2"
)

func main() {
	arch := d2t2.Opal()
	buffer := arch.InputBufferWords
	fmt.Printf("machine: %s (buffer %d words = %d KiB, %g words/cycle, %g MACs/cycle)\n\n",
		arch.Name, buffer, buffer*4/1024, arch.BandwidthWordsPerCycle, arch.MACsPerCycle)

	kernel := d2t2.Gustavson()
	matrices := []string{
		"bcsstm26", "bwm2000", "G33", "N_biocarta",
		"progas", "qiulp", "tols2000", "west2021",
	}

	fmt.Printf("%-12s %10s %8s %-22s %9s\n", "matrix", "dims", "nnz", "d2t2 config", "speedup")
	for _, name := range matrices {
		a, err := d2t2.Dataset(name, 1) // full size, as in the paper
		if err != nil {
			log.Fatal(err)
		}
		inputs := d2t2.Inputs{"A": a, "B": a.Transpose()}

		pres, err := d2t2.PrescientConfig(kernel, inputs, buffer)
		if err != nil {
			log.Fatal(err)
		}
		presRep, err := d2t2.MeasureConfig(kernel, inputs, pres)
		if err != nil {
			log.Fatal(err)
		}

		plan, err := d2t2.Optimize(kernel, inputs, d2t2.Options{BufferWords: buffer})
		if err != nil {
			log.Fatal(err)
		}
		rep, err := plan.Measure()
		if err != nil {
			log.Fatal(err)
		}

		dims := a.Dims()
		fmt.Printf("%-12s %4dx%-5d %8d %-22s %8.2fx\n",
			name, dims[0], dims[1], a.NNZ(),
			fmt.Sprintf("i=%d k=%d j=%d", plan.Config["i"], plan.Config["k"], plan.Config["j"]),
			d2t2.Speedup(presRep, rep, arch))
	}
	fmt.Println("\npaper reports 1.23-3.34x speedups (geomean ~2x) for the real matrices")
}
