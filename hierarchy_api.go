package d2t2

import (
	"d2t2/internal/hierarchy"
	"d2t2/internal/model"
)

// HierarchyPlan is a two-level tiling configuration: L2 tiles sized for
// a global buffer, L1 tiles sized for a per-PE buffer (the Opal CGRA
// memory structure of the paper's §6.4).
type HierarchyPlan struct {
	L2 TileConfig
	L1 TileConfig

	kernel *Kernel
	inputs Inputs
	plan   *hierarchy.Plan
}

// OptimizeHierarchy runs D2T2 at both memory levels of a two-level
// hierarchy: the L2 configuration minimizes DRAM traffic; the L1
// configuration is optimized on the heaviest live L2 tile pair and
// reused everywhere. Supports two-operand single-contraction matrix
// kernels (SpMSpM in any dataflow).
func OptimizeHierarchy(k *Kernel, inputs Inputs, l2BufferWords, l1BufferWords int) (*HierarchyPlan, error) {
	plan, err := hierarchy.Optimize(k.expr, inputs.lower(), hierarchy.Options{
		L2BufferWords: l2BufferWords,
		L1BufferWords: l1BufferWords,
	})
	if err != nil {
		return nil, err
	}
	out := &HierarchyPlan{
		L2:     make(TileConfig, len(plan.L2)),
		L1:     make(TileConfig, len(plan.L1)),
		kernel: k,
		inputs: inputs,
		plan:   plan,
	}
	for ix, v := range plan.L2 {
		out.L2[ix] = v
	}
	for ix, v := range plan.L1 {
		out.L1[ix] = v
	}
	return out, nil
}

// HierarchyReport is the measured two-level traffic: DRAM→global for the
// L2 schedule and global→PE summed over every live L2 tile pair.
type HierarchyReport struct {
	DRAM   *TrafficReport
	Global *TrafficReport
	Pairs  int
}

// Measure executes the two-level plan and reports traffic at each level.
func (p *HierarchyPlan) Measure() (*HierarchyReport, error) {
	lowered := hierarchy.Plan{
		L2: model.Config(p.L2), L1: model.Config(p.L1), L2Result: p.plan.L2Result,
	}
	rep, err := hierarchy.Measure(p.kernel.expr, p.inputs.lower(), &lowered)
	if err != nil {
		return nil, err
	}
	return &HierarchyReport{
		DRAM:   newReport(&rep.DRAM),
		Global: newReport(&rep.Global),
		Pairs:  rep.Pairs,
	}, nil
}
