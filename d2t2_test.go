package d2t2

import (
	"bytes"
	"strings"
	"testing"
)

func TestPublicAPIRoundTrip(t *testing.T) {
	a := NewTensor(8, 8)
	a.Set([]int{0, 0}, 1)
	a.Set([]int{3, 5}, 2)
	a.Normalize()
	if a.NNZ() != 2 || a.Order() != 2 {
		t.Fatalf("nnz=%d order=%d", a.NNZ(), a.Order())
	}
	c, v := a.Entry(1)
	if c[0] != 3 || c[1] != 5 || v != 2 {
		t.Fatalf("entry = %v %v", c, v)
	}
	at := a.Transpose()
	if d := at.Dims(); d[0] != 8 || d[1] != 8 {
		t.Fatalf("dims = %v", d)
	}

	var buf bytes.Buffer
	if err := a.ToMatrixMarket(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := FromMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NNZ() != 2 {
		t.Fatal("matrix market round trip lost entries")
	}

	var tns bytes.Buffer
	if err := a.ToTNS(&tns); err != nil {
		t.Fatal(err)
	}
	if _, err := FromTNS(&tns, a.Dims()); err != nil {
		t.Fatal(err)
	}
}

func TestKernels(t *testing.T) {
	k, err := ParseKernel("C(i,j) = A(i,k) * B(k,j) | order: i,k,j")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(k.String(), "A(i,k)") {
		t.Fatalf("kernel string = %q", k.String())
	}
	if _, err := ParseKernel("garbage"); err == nil {
		t.Fatal("bad kernel accepted")
	}
	for _, k := range []*Kernel{Gustavson(), InnerProduct(), TTM(), MTTKRP()} {
		if k.String() == "" {
			t.Fatal("empty kernel")
		}
	}
}

func TestOptimizeMeasureExecute(t *testing.T) {
	a, err := Dataset("E", 96) // scircuit stand-in, small
	if err != nil {
		t.Fatal(err)
	}
	inputs := Inputs{"A": a, "B": a.Transpose()}
	k := Gustavson()
	buffer := DenseTileWords(32, 32)

	plan, err := Optimize(k, inputs, Options{BufferWords: buffer})
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Validate(plan.Config); err != nil {
		t.Fatal(err)
	}
	if plan.BaseTile != 32 || plan.PredictedMB <= 0 {
		t.Fatalf("plan = %+v", plan)
	}

	rep, err := plan.Measure()
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalWords() <= 0 || rep.MACs <= 0 {
		t.Fatalf("report = %+v", rep)
	}

	out, rep2, err := plan.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if out.NNZ() == 0 {
		t.Fatal("empty product")
	}
	if rep2.TotalWords() != rep.TotalWords() {
		t.Fatal("execute and measure disagree on traffic")
	}

	// Baselines and machine model.
	cons := ConservativeConfig(k, buffer)
	if cons["i"] != 32 {
		t.Fatalf("conservative = %v", cons)
	}
	pres, err := PrescientConfig(k, inputs, buffer)
	if err != nil {
		t.Fatal(err)
	}
	presRep, err := MeasureConfig(k, inputs, pres)
	if err != nil {
		t.Fatal(err)
	}
	sp := Speedup(presRep, rep, Extensor())
	if sp <= 0 {
		t.Fatalf("speedup = %v", sp)
	}
	if Runtime(rep, Opal()) <= 0 {
		t.Fatal("no runtime")
	}
}

func TestOptionsVariants(t *testing.T) {
	a, err := Dataset("Q", 96)
	if err != nil {
		t.Fatal(err)
	}
	inputs := Inputs{"A": a, "B": a.Transpose()}
	buffer := DenseTileWords(32, 32)
	for _, o := range []Options{
		{BufferWords: buffer, Analytic: true},
		{BufferWords: buffer, DisableCorrs: true},
		{BufferWords: buffer, SkipResize: true},
	} {
		if _, err := Optimize(Gustavson(), inputs, o); err != nil {
			t.Fatalf("%+v: %v", o, err)
		}
	}
	if _, err := Optimize(Gustavson(), inputs, Options{}); err == nil {
		t.Fatal("zero buffer accepted")
	}
}

func TestDatasetErrors(t *testing.T) {
	if _, err := Dataset("ZZ", 1); err == nil {
		t.Fatal("unknown dataset accepted")
	}
	d, err := Dataset("bwm2000", 1)
	if err != nil || d.NNZ() == 0 {
		t.Fatalf("table-5 dataset failed: %v", err)
	}
}

func TestSDDMMAndEnergyAPI(t *testing.T) {
	k := SDDMM()
	s := NewTensor(64, 64)
	a := NewTensor(64, 64)
	b := NewTensor(64, 64)
	for i := 0; i < 64; i += 3 {
		s.Set([]int{i, (i * 7) % 64}, 1)
		a.Set([]int{i, (i * 5) % 64}, 2)
		b.Set([]int{(i * 5) % 64, (i * 7) % 64}, 3)
	}
	inputs := Inputs{"S": s, "A": a, "B": b}
	cfg := TileConfig{"i": 16, "j": 16, "k": 16}
	if err := k.Validate(cfg); err != nil {
		t.Fatal(err)
	}
	rep, err := MeasureConfig(k, inputs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if e := EnergyPJ(rep, DefaultEnergy()); e <= 0 {
		t.Fatalf("energy = %v", e)
	}
}

func TestOptimizeEmptyishInput(t *testing.T) {
	// A single-entry matrix must survive the whole pipeline.
	a := NewTensor(256, 256)
	a.Set([]int{10, 20}, 1)
	inputs := Inputs{"A": a, "B": a.Transpose()}
	plan, err := Optimize(Gustavson(), inputs, Options{BufferWords: DenseTileWords(32, 32)})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := plan.Measure()
	if err != nil {
		t.Fatal(err)
	}
	if rep.MACs != 0 {
		// (10,20)x(20,10)... A(10,20), B=At has (20,10): product over k:
		// A(i=10,k=20)*B(k=20,j=10) = one MAC.
		if rep.MACs != 1 {
			t.Fatalf("MACs = %d", rep.MACs)
		}
	}
}

func TestVectorKernel(t *testing.T) {
	// Elementwise vector product: C(i) = A(i) * B(i).
	k, err := ParseKernel("C(i) = A(i) * B(i) | order: i")
	if err != nil {
		t.Fatal(err)
	}
	a := NewTensor(100)
	b := NewTensor(100)
	for i := 0; i < 100; i += 2 {
		a.Set([]int{i}, 2)
	}
	for i := 0; i < 100; i += 3 {
		b.Set([]int{i}, 3)
	}
	out, rep, err := executeConfig(k, Inputs{"A": a, "B": b}, TileConfig{"i": 10})
	if err != nil {
		t.Fatal(err)
	}
	// Intersection: multiples of 6 -> 17 entries (0,6,...,96).
	if out.NNZ() != 17 {
		t.Fatalf("vector product nnz = %d, want 17", out.NNZ())
	}
	if rep.MACs != 17 {
		t.Fatalf("MACs = %d, want 17", rep.MACs)
	}
	c, v := out.Entry(1)
	if c[0] != 6 || v != 6 {
		t.Fatalf("entry = %v %v", c, v)
	}
}

func TestOptimizeDataflow(t *testing.T) {
	a, err := Dataset("Q", 96)
	if err != nil {
		t.Fatal(err)
	}
	inputs := Inputs{"A": a, "B": a.Transpose()}
	plan, order, err := OptimizeDataflow(Gustavson(), inputs, Options{BufferWords: DenseTileWords(32, 32)})
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 {
		t.Fatalf("order = %v", order)
	}
	rep, err := plan.Measure()
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalWords() <= 0 {
		t.Fatal("no traffic")
	}
}

func TestPublicAPIMoreSurface(t *testing.T) {
	a, err := Dataset("K", 8)
	if err != nil {
		t.Fatal(err)
	}
	aN := a.NNZ()
	c := a.Clone()
	c.Set([]int{0, 0}, 99)
	c.Normalize()
	if a.NNZ() != aN {
		t.Fatal("clone aliased storage: mutating the copy changed the original")
	}

	// CollectStats summary.
	st, err := CollectStats(a, 64)
	if err != nil {
		t.Fatal(err)
	}
	if st.SizeTile <= 0 || st.MaxTile < int(st.SizeTile) || st.NumTiles <= 0 {
		t.Fatalf("stats summary wrong: %+v", st)
	}
	if len(st.PrTileIdx) != 2 || len(st.CorrSums) != 2 {
		t.Fatalf("stats arity: %+v", st)
	}

	// PredictConfig.
	inputs := Inputs{"A": a, "B": a.Transpose()}
	mb, err := PredictConfig(Gustavson(), inputs, TileConfig{"i": 64, "k": 64, "j": 64}, 64)
	if err != nil {
		t.Fatal(err)
	}
	if mb <= 0 {
		t.Fatalf("predicted MB = %v", mb)
	}
	// Missing input tensor.
	if _, err := PredictConfig(Gustavson(), Inputs{"A": a}, TileConfig{"i": 64, "k": 64, "j": 64}, 64); err == nil {
		t.Fatal("missing input accepted")
	}

	// Validate rejects incomplete configs.
	if err := Gustavson().Validate(TileConfig{"i": 4}); err == nil {
		t.Fatal("incomplete config validated")
	}

	// MeasureConfig error path (bad config).
	if _, err := MeasureConfig(Gustavson(), inputs, TileConfig{"i": 64}); err == nil {
		t.Fatal("incomplete measure config accepted")
	}
}

func TestSpyAPI(t *testing.T) {
	a, err := Dataset("A", 96)
	if err != nil {
		t.Fatal(err)
	}
	out := a.Spy(30, 10)
	if len(out) == 0 || !strings.Contains(out, "@") && !strings.Contains(out, "#") &&
		!strings.Contains(out, "*") && !strings.Contains(out, "+") && !strings.Contains(out, ".") {
		t.Fatalf("spy produced no glyphs:\n%s", out)
	}
}

func TestOptimizeHierarchyAPI(t *testing.T) {
	a, err := Dataset("N", 8) // bcsstk17 stand-in, small
	if err != nil {
		t.Fatal(err)
	}
	inputs := Inputs{"A": a, "B": a.Transpose()}
	plan, err := OptimizeHierarchy(Gustavson(), inputs,
		DenseTileWords(128, 128), DenseTileWords(16, 16))
	if err != nil {
		t.Fatal(err)
	}
	if plan.L1["i"] < 1 || plan.L2["i"] < plan.L1["i"] {
		t.Fatalf("plan levels wrong: L1=%v L2=%v", plan.L1, plan.L2)
	}
	rep, err := plan.Measure()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pairs == 0 || rep.DRAM.TotalWords() <= 0 || rep.Global.TotalWords() <= 0 {
		t.Fatalf("report = %+v", rep)
	}
	// Errors: bad buffers.
	if _, err := OptimizeHierarchy(Gustavson(), inputs, 10, 10); err == nil {
		t.Fatal("L1 >= L2 accepted")
	}
}
