// Command d2t2vet runs the repository's domain-specific static-analysis
// suite (internal/analysis) over package patterns and exits non-zero on
// findings. It is the CI gate next to go vet and the race detector:
//
//	go run ./cmd/d2t2vet ./...          # whole module
//	go run ./cmd/d2t2vet -list          # what the suite checks
//	go run ./cmd/d2t2vet -json ./...    # machine-readable findings
//	go run ./cmd/d2t2vet -checks panicpolicy,coordwidth ./internal/formats
//
// Findings are suppressed with an annotation on the offending line or
// the line above, with a justification:
//
//	//d2t2:ignore coordwidth coords < dims, validated by tensor.New
//
// Exit status: 0 clean, 1 findings, 2 usage or load errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"d2t2/internal/analysis"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		listFlag   = flag.Bool("list", false, "list analyzers and exit")
		jsonFlag   = flag.Bool("json", false, "emit findings as JSON")
		checksFlag = flag.String("checks", "", "comma-separated analyzer names to run (default: all)")
	)
	flag.Parse()

	all := analysis.Analyzers()
	if *listFlag {
		for _, a := range all {
			fmt.Printf("%-18s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers := all
	if *checksFlag != "" {
		analyzers = nil
		for _, name := range strings.Split(*checksFlag, ",") {
			name = strings.TrimSpace(name)
			a := analysis.ByName(name)
			if a == nil {
				fmt.Fprintf(os.Stderr, "d2t2vet: unknown analyzer %q (try -list)\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "d2t2vet:", err)
		return 2
	}
	loader, err := analysis.NewLoader(wd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "d2t2vet:", err)
		return 2
	}
	paths, err := loader.Expand(flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "d2t2vet:", err)
		return 2
	}

	var findings []analysis.Diagnostic
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "d2t2vet:", err)
			return 2
		}
		findings = append(findings, analysis.Run(pkg, analyzers)...)
	}

	if *jsonFlag {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(os.Stderr, "d2t2vet:", err)
			return 2
		}
	} else {
		for _, d := range findings {
			fmt.Println(d)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "d2t2vet: %d finding(s) in %d package(s)\n", len(findings), len(paths))
		return 1
	}
	return 0
}
