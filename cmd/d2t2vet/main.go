// Command d2t2vet runs the repository's domain-specific static-analysis
// suite (internal/analysis) over package patterns and exits non-zero on
// findings. It is the CI gate next to go vet and the race detector:
//
//	go run ./cmd/d2t2vet ./...                  # whole module
//	go run ./cmd/d2t2vet -list                  # what the suite checks
//	go run ./cmd/d2t2vet -only ctxpropagation,countername ./internal/serve
//	go run ./cmd/d2t2vet -skip coordwidth ./...
//	go run ./cmd/d2t2vet -format json ./...     # machine-readable findings
//	go run ./cmd/d2t2vet -format sarif ./...    # CI annotations (upload-sarif)
//	go run ./cmd/d2t2vet -fix ./...             # apply suggested fixes
//
// All packages are loaded before any analyzer runs, and one call graph
// is built over the whole set, so cross-package checks (ctxpropagation
// sibling lookups, countername sink discovery) see every edge.
//
// Findings are suppressed with an annotation on the offending line or
// the line above, with a justification:
//
//	//d2t2:ignore coordwidth coords < dims, validated by tensor.New
//
// Exit status: 0 clean, 1 findings, 2 usage or load errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"d2t2/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, ""))
}

// vetConfig is the parsed command line.
type vetConfig struct {
	list     bool
	fix      bool
	format   string
	patterns []string
	checks   []*analysis.Analyzer
}

// parseArgs interprets the command line into a vetConfig. It is split
// from run so flag handling is unit-testable without loading packages.
func parseArgs(args []string, stderr io.Writer) (*vetConfig, error) {
	fs := flag.NewFlagSet("d2t2vet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		listFlag   = fs.Bool("list", false, "list analyzers and exit")
		jsonFlag   = fs.Bool("json", false, "emit findings as JSON (same as -format json)")
		formatFlag = fs.String("format", "text", "output format: text, json or sarif")
		onlyFlag   = fs.String("only", "", "comma-separated analyzer names to run (default: all)")
		checksFlag = fs.String("checks", "", "alias of -only (kept for older CI recipes)")
		skipFlag   = fs.String("skip", "", "comma-separated analyzer names to exclude")
		fixFlag    = fs.Bool("fix", false, "apply suggested fixes to the source, then report what remains")
	)
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	format := *formatFlag
	if *jsonFlag {
		format = "json"
	}
	switch format {
	case "text", "json", "sarif":
	default:
		return nil, fmt.Errorf("unknown -format %q (want text, json or sarif)", format)
	}
	only := *onlyFlag
	if only == "" {
		only = *checksFlag
	} else if *checksFlag != "" && *checksFlag != only {
		return nil, fmt.Errorf("-only and -checks are aliases; pass one")
	}
	checks, err := analysis.Select(only, *skipFlag)
	if err != nil {
		return nil, err
	}
	return &vetConfig{
		list:     *listFlag,
		fix:      *fixFlag,
		format:   format,
		patterns: fs.Args(),
		checks:   checks,
	}, nil
}

func run(args []string, stdout, stderr io.Writer, dir string) int {
	cfg, err := parseArgs(args, stderr)
	if err != nil {
		fmt.Fprintln(stderr, "d2t2vet:", err)
		return 2
	}
	if cfg.list {
		for _, a := range cfg.checks {
			fmt.Fprintf(stdout, "%-18s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	if dir == "" {
		dir, err = os.Getwd()
		if err != nil {
			fmt.Fprintln(stderr, "d2t2vet:", err)
			return 2
		}
	}
	loader, err := analysis.NewLoader(dir)
	if err != nil {
		fmt.Fprintln(stderr, "d2t2vet:", err)
		return 2
	}
	paths, err := loader.Expand(cfg.patterns)
	if err != nil {
		fmt.Fprintln(stderr, "d2t2vet:", err)
		return 2
	}

	// Load everything first so the call graph spans the whole run:
	// ctxpropagation resolves Ctx siblings of callees in other packages,
	// and countername's sink fixpoint follows wrappers across packages.
	pkgs := make([]*analysis.Package, 0, len(paths))
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			fmt.Fprintln(stderr, "d2t2vet:", err)
			return 2
		}
		pkgs = append(pkgs, pkg)
	}
	graph := analysis.BuildCallGraph(pkgs)

	var findings []analysis.Diagnostic
	for _, pkg := range pkgs {
		findings = append(findings, analysis.RunGraph(pkg, graph, cfg.checks)...)
	}

	if cfg.fix {
		changed, applied, skippedFixes, err := analysis.ApplyFixes(findings)
		if err != nil {
			fmt.Fprintln(stderr, "d2t2vet:", err)
			return 2
		}
		if applied > 0 {
			fmt.Fprintf(stderr, "d2t2vet: applied %d fix(es) in %d file(s)", applied, len(changed))
			if skippedFixes > 0 {
				fmt.Fprintf(stderr, ", skipped %d conflicting (re-run to apply)", skippedFixes)
			}
			fmt.Fprintln(stderr)
			for _, f := range changed {
				fmt.Fprintln(stderr, "d2t2vet: rewrote", f)
			}
		}
		// Fixed findings are resolved; keep reporting what -fix could
		// not rewrite.
		var remaining []analysis.Diagnostic
		for _, d := range findings {
			if d.Fix == nil || len(d.Fix.Edits) == 0 {
				remaining = append(remaining, d)
			}
		}
		findings = remaining
	}

	switch cfg.format {
	case "json":
		b, err := analysis.JSON(findings)
		if err != nil {
			fmt.Fprintln(stderr, "d2t2vet:", err)
			return 2
		}
		fmt.Fprintln(stdout, string(b))
	case "sarif":
		b, err := analysis.SARIF(findings, cfg.checks, loader.ModuleRoot)
		if err != nil {
			fmt.Fprintln(stderr, "d2t2vet:", err)
			return 2
		}
		fmt.Fprintln(stdout, string(b))
	default:
		for _, d := range findings {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "d2t2vet: %d finding(s) in %d package(s)\n", len(findings), len(paths))
		return 1
	}
	return 0
}
