package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestParseArgs(t *testing.T) {
	names := func(cfg *vetConfig) []string {
		var out []string
		for _, a := range cfg.checks {
			out = append(out, a.Name)
		}
		return out
	}

	t.Run("defaults", func(t *testing.T) {
		cfg, err := parseArgs([]string{"./..."}, &bytes.Buffer{})
		if err != nil {
			t.Fatal(err)
		}
		if cfg.list || cfg.fix || cfg.format != "text" {
			t.Fatalf("defaults wrong: %+v", cfg)
		}
		if len(cfg.checks) != 9 {
			t.Fatalf("default suite has %d analyzers, want 9: %v", len(cfg.checks), names(cfg))
		}
		if len(cfg.patterns) != 1 || cfg.patterns[0] != "./..." {
			t.Fatalf("patterns = %v", cfg.patterns)
		}
	})

	t.Run("only", func(t *testing.T) {
		cfg, err := parseArgs([]string{"-only", "ctxpropagation,countername", "./..."}, &bytes.Buffer{})
		if err != nil {
			t.Fatal(err)
		}
		got := names(cfg)
		if len(got) != 2 || got[0] != "countername" || got[1] != "ctxpropagation" {
			t.Fatalf("-only selection = %v", got)
		}
	})

	t.Run("checks alias", func(t *testing.T) {
		cfg, err := parseArgs([]string{"-checks", "scratchescape"}, &bytes.Buffer{})
		if err != nil {
			t.Fatal(err)
		}
		if got := names(cfg); len(got) != 1 || got[0] != "scratchescape" {
			t.Fatalf("-checks selection = %v", got)
		}
	})

	t.Run("only and checks conflict", func(t *testing.T) {
		if _, err := parseArgs([]string{"-only", "countername", "-checks", "coordwidth"}, &bytes.Buffer{}); err == nil {
			t.Fatal("conflicting -only/-checks accepted")
		}
	})

	t.Run("skip", func(t *testing.T) {
		cfg, err := parseArgs([]string{"-skip", "coordwidth,panicpolicy"}, &bytes.Buffer{})
		if err != nil {
			t.Fatal(err)
		}
		got := names(cfg)
		if len(got) != 7 {
			t.Fatalf("-skip left %d analyzers, want 7: %v", len(got), got)
		}
		for _, n := range got {
			if n == "coordwidth" || n == "panicpolicy" {
				t.Fatalf("skipped analyzer %s still selected", n)
			}
		}
	})

	t.Run("skip beats only", func(t *testing.T) {
		cfg, err := parseArgs([]string{"-only", "countername,coordwidth", "-skip", "coordwidth"}, &bytes.Buffer{})
		if err != nil {
			t.Fatal(err)
		}
		if got := names(cfg); len(got) != 1 || got[0] != "countername" {
			t.Fatalf("selection = %v", got)
		}
	})

	t.Run("unknown analyzer", func(t *testing.T) {
		if _, err := parseArgs([]string{"-only", "nosuchcheck"}, &bytes.Buffer{}); err == nil {
			t.Fatal("unknown analyzer accepted")
		}
		if _, err := parseArgs([]string{"-skip", "nosuchcheck"}, &bytes.Buffer{}); err == nil {
			t.Fatal("unknown -skip analyzer accepted")
		}
	})

	t.Run("formats", func(t *testing.T) {
		for _, f := range []string{"text", "json", "sarif"} {
			cfg, err := parseArgs([]string{"-format", f}, &bytes.Buffer{})
			if err != nil {
				t.Fatal(err)
			}
			if cfg.format != f {
				t.Fatalf("format = %q, want %q", cfg.format, f)
			}
		}
		if _, err := parseArgs([]string{"-format", "xml"}, &bytes.Buffer{}); err == nil {
			t.Fatal("-format xml accepted")
		}
		cfg, err := parseArgs([]string{"-json"}, &bytes.Buffer{})
		if err != nil {
			t.Fatal(err)
		}
		if cfg.format != "json" {
			t.Fatalf("-json did not select json format: %q", cfg.format)
		}
	})
}

func TestListOutput(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb, ""); code != 0 {
		t.Fatalf("run(-list) = %d, stderr: %s", code, errb.String())
	}
	for _, want := range []string{
		"coordwidth", "countername", "csfmutation", "ctxpropagation",
		"floatdeterminism", "goroutinehygiene", "panicpolicy",
		"reductionorder", "scratchescape",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("-list output missing %s:\n%s", want, out.String())
		}
	}
}
