// Command d2t2d is the Data-Driven Tensor Tiling optimizer daemon: a
// long-running HTTP service that ingests sparse tensors, collects tile
// statistics once per tensor, and answers optimize/predict queries from
// a content-addressed artifact cache of binary snapshots.
//
// Usage:
//
//	d2t2d -addr :8421 -cache-dir d2t2d-cache -mem-cache-mb 64 -workers 4
//
// Endpoints:
//
//	POST /v1/tensors              ingest a .mtx/.tns upload or a JSON
//	                              {"gen": {"label": "C", "scale": 32}} spec
//	POST /v1/tensors/{id}/delta   append a coordinate delta; statistics
//	                              merge instead of re-collecting
//	POST /v1/optimize             run the D2T2 pipeline for a kernel
//	POST /v1/predict              price one tile configuration
//	POST /v1/batch                schedule many optimize jobs as one unit;
//	                              jobs sharing a tensor share one collection
//	GET  /v1/tensors/{id}/stats   collected statistics summary
//	GET  /healthz                 liveness + version
//	GET  /readyz                  readiness (503 while draining/degraded)
//	GET  /debug/vars              expvar counters
//
// With -peers (plus -self-url and a shared -cluster-secret) the daemon
// joins a static cluster: nodes agree on a consistent-hash owner per
// artifact, fetch warm artifacts from peers before recomputing, forward
// cold optimize/predict requests to the owner so identical cold work
// runs once fleet-wide, and replicate warm artifacts to ring
// successors. Peer traffic rides authenticated /internal/v1/* routes on
// the same listener.
//
// With -debug-addr a second, loopback-only listener additionally serves
// net/http/pprof profiles and the full expvar surface; it is off by
// default and never mounts on the service address.
//
// The daemon drains gracefully on SIGINT/SIGTERM: in-flight requests
// finish (bounded by -drain-timeout), then ingest workers are joined.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"d2t2/internal/buildinfo"
	"d2t2/internal/serve"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "d2t2d:", err)
		os.Exit(1)
	}
}

// splitPeers parses the -peers flag: comma-separated base URLs, blanks
// dropped so a trailing comma is harmless. Validation (scheme, host,
// duplicates) happens in serve.Config.validate.
func splitPeers(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func run(args []string) error {
	fs := flag.NewFlagSet("d2t2d", flag.ExitOnError)
	addr := fs.String("addr", ":8421", "listen address")
	cacheDir := fs.String("cache-dir", "d2t2d-cache", "artifact cache directory (empty = memory only)")
	memMB := fs.Int("mem-cache-mb", 64, "in-memory artifact cache budget in MiB")
	workers := fs.Int("workers", 0, "ingest + cold-pipeline worker count (0 = all cores)")
	reqTimeout := fs.Duration("request-timeout", 30*time.Second, "per-request compute deadline (queue wait + pipeline)")
	readHeaderTimeout := fs.Duration("read-header-timeout", 0, "time allowed to read request headers (0 = default 5s)")
	readTimeout := fs.Duration("read-timeout", 0, "time allowed to read a whole request (0 = request-timeout + 30s)")
	writeTimeout := fs.Duration("write-timeout", 0, "time allowed to write a whole response (0 = request-timeout + 30s)")
	idleTimeout := fs.Duration("idle-timeout", 0, "keep-alive idle connection bound (0 = default 2m)")
	drainTimeout := fs.Duration("drain-timeout", 15*time.Second, "graceful shutdown drain bound")
	debugAddr := fs.String("debug-addr", "", "debug listen address for net/http/pprof + expvar (empty = disabled; bind loopback, e.g. 127.0.0.1:8422)")
	peers := fs.String("peers", "", "comma-separated peer base URLs (e.g. http://10.0.0.2:8421,http://10.0.0.3:8421); non-empty turns on clustering")
	selfURL := fs.String("self-url", "", "this node's own base URL as peers reach it (required with -peers)")
	clusterSecret := fs.String("cluster-secret", "", "shared secret authenticating internal peer routes (required with -peers; prefer D2T2_CLUSTER_SECRET)")
	replication := fs.Int("replication", 0, "ring successors each warm artifact replicates to (0 = default 1; at most the peer count)")
	peerTimeout := fs.Duration("peer-timeout", 0, "per-peer-call bound: artifact fetch, forward, replica push, ping (0 = default 5s)")
	version := fs.Bool("version", false, "print version and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Println("d2t2d", buildinfo.Version)
		return nil
	}

	// The secret is accepted from the environment too, so process lists
	// (ps, /proc cmdline) need not carry it; the flag wins when both are
	// set, for local experiments.
	secret := *clusterSecret
	if secret == "" {
		secret = os.Getenv("D2T2_CLUSTER_SECRET")
	}
	srv, err := serve.New(serve.Config{
		CacheDir:          *cacheDir,
		MemCacheBytes:     int64(*memMB) << 20,
		Workers:           *workers,
		RequestTimeout:    *reqTimeout,
		ReadHeaderTimeout: *readHeaderTimeout,
		ReadTimeout:       *readTimeout,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       *idleTimeout,
		Peers:             splitPeers(*peers),
		SelfURL:           *selfURL,
		ClusterSecret:     secret,
		Replication:       *replication,
		PeerTimeout:       *peerTimeout,
	})
	if err != nil {
		return err
	}
	// The daemon runs one server per process, so its metrics map can be
	// published globally for the stdlib expvar handler ecosystem.
	expvar.Publish("d2t2d", srv.Vars())

	// The profiling surface is a SEPARATE listener, off by default:
	// pprof exposes heap contents and CPU control, so it never mounts on
	// the service address where it would face whatever faces the API.
	var dbg *http.Server
	dbgErr := make(chan error, 1)
	if *debugAddr != "" {
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dmux.Handle("/debug/vars", expvar.Handler())
		dbg = &http.Server{
			Addr:              *debugAddr,
			Handler:           dmux,
			ReadHeaderTimeout: 5 * time.Second,
		}
		// The channel send is the goroutine's join signal: shutdown
		// closes the listener and then receives the exit error below.
		go func() { dbgErr <- dbg.ListenAndServe() }()
		fmt.Fprintf(os.Stderr, "d2t2d: debug (pprof+expvar) on %s\n", *debugAddr)
	}
	stopDebug := func(ctx context.Context) error {
		if dbg == nil {
			return nil
		}
		err := dbg.Shutdown(ctx)
		if lerr := <-dbgErr; !errors.Is(lerr, http.ErrServerClosed) && err == nil {
			err = lerr
		}
		return err
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe(*addr) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)

	fmt.Fprintf(os.Stderr, "d2t2d %s listening on %s (cache %q)\n", buildinfo.Version, *addr, *cacheDir)
	select {
	case err := <-errc:
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		_ = stopDebug(ctx)
		return err
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "d2t2d: %v, draining\n", s)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			_ = stopDebug(ctx)
			return fmt.Errorf("shutdown: %w", err)
		}
		if err := stopDebug(ctx); err != nil {
			return fmt.Errorf("debug shutdown: %w", err)
		}
		return <-errc
	}
}
