package main

import (
	"flag"
	"fmt"

	"d2t2"
)

// cmdCompare runs every tiling scheme — Conservative, Prescient, D2T2 —
// on the same inputs and prints traffic, runtime and energy side by
// side on the chosen machine.
func cmdCompare(args []string) error {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	files := inputFlags{}
	fs.Var(files, "input", "NAME=FILE (repeatable; FILE may be dataset:LABEL[:SCALE])")
	kernel := fs.String("kernel", "C(i,j) = A(i,k) * B(k,j) | order: i,k,j", "TIN kernel")
	tile := fs.Int("tile", 128, "buffer sized for this dense square tile")
	machine := fs.String("machine", "extensor", "machine model: extensor or opal")
	if err := fs.Parse(args); err != nil {
		return err
	}
	k, err := d2t2.ParseKernel(*kernel)
	if err != nil {
		return err
	}
	inputs, err := loadInputs(files)
	if err != nil {
		return err
	}
	var arch d2t2.Arch
	switch *machine {
	case "extensor":
		arch = d2t2.Extensor()
	case "opal":
		arch = d2t2.Opal()
	default:
		return fmt.Errorf("unknown machine %q", *machine)
	}
	buffer := d2t2.DenseTileWords(*tile, *tile)

	type rowT struct {
		name   string
		cfg    d2t2.TileConfig
		report *d2t2.TrafficReport
	}
	var rows []rowT

	cons := d2t2.ConservativeConfig(k, buffer)
	consRep, err := d2t2.MeasureConfig(k, inputs, cons)
	if err != nil {
		return err
	}
	rows = append(rows, rowT{"conservative", cons, consRep})

	pres, err := d2t2.PrescientConfig(k, inputs, buffer)
	if err != nil {
		return err
	}
	presRep, err := d2t2.MeasureConfig(k, inputs, pres)
	if err != nil {
		return err
	}
	rows = append(rows, rowT{"prescient", pres, presRep})

	plan, err := d2t2.Optimize(k, inputs, d2t2.Options{BufferWords: buffer})
	if err != nil {
		return err
	}
	d2Rep, err := plan.Measure()
	if err != nil {
		return err
	}
	rows = append(rows, rowT{"d2t2", plan.Config, d2Rep})

	energy := d2t2.DefaultEnergy()
	fmt.Printf("%-14s %-28s %12s %12s %12s %10s\n",
		"scheme", "config", "traffic MB", "cycles", "energy uJ", "speedup")
	for _, r := range rows {
		fmt.Printf("%-14s %-28s %12.3f %12.0f %12.3f %9.2fx\n",
			r.name, configString(r.cfg), r.report.TotalMB(),
			d2t2.Runtime(r.report, arch),
			d2t2.EnergyPJ(r.report, energy)/1e6,
			d2t2.Speedup(consRep, r.report, arch))
	}
	return nil
}
