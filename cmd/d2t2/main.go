// Command d2t2 is the Data-Driven Tensor Tiling toolchain CLI: it
// synthesizes datasets, collects tile statistics, optimizes tiling
// configurations, predicts traffic with the probabilistic model, and
// measures actual traffic with the execution backend.
//
// Usage:
//
//	d2t2 gen      -label C -scale 32 -out rma10.mtx
//	d2t2 stats    -input A=rma10.mtx -tile 128
//	d2t2 optimize -kernel "C(i,j) = A(i,k) * B(k,j) | order: i,k,j" \
//	              -input A=a.mtx -input B=b.mtx -tile 128
//	d2t2 measure  -kernel "..." -input A=a.mtx -input B=b.mtx \
//	              -config i=512,k=32,j=512
//	d2t2 predict  -kernel "..." -input A=a.mtx -input B=b.mtx \
//	              -config i=512,k=32,j=512 -tile 128
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"d2t2"
	"d2t2/internal/buildinfo"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "gen":
		err = cmdGen(os.Args[2:])
	case "stats":
		err = cmdStats(os.Args[2:])
	case "optimize":
		err = cmdOptimize(os.Args[2:])
	case "measure":
		err = cmdMeasure(os.Args[2:])
	case "predict":
		err = cmdPredict(os.Args[2:])
	case "compare":
		err = cmdCompare(os.Args[2:])
	case "spy":
		err = cmdSpy(os.Args[2:])
	case "version", "-version", "--version":
		fmt.Println("d2t2", buildinfo.Version)
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "d2t2: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "d2t2:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `d2t2 <command> [flags]

commands:
  gen       synthesize a paper dataset stand-in (Matrix Market / tns)
  stats     collect and print tile statistics for a tensor
  optimize  run the D2T2 pipeline and print the chosen configuration
  measure   execute a tile configuration and report exact traffic
  predict   predict traffic for a configuration with the model
  compare   run conservative/prescient/D2T2 side by side on a machine
  spy       render an ASCII occupancy plot of a matrix
  version   print the build version
  help      show this message`)
}

// inputFlags accumulates repeated -input NAME=FILE flags.
type inputFlags map[string]string

func (f inputFlags) String() string { return fmt.Sprint(map[string]string(f)) }
func (f inputFlags) Set(s string) error {
	name, file, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("want NAME=FILE, got %q", s)
	}
	f[name] = file
	return nil
}

func loadInputs(files inputFlags) (d2t2.Inputs, error) {
	inputs := make(d2t2.Inputs, len(files))
	for name, path := range files {
		t, err := loadTensor(path)
		if err != nil {
			return nil, fmt.Errorf("input %s: %w", name, err)
		}
		inputs[name] = t
	}
	return inputs, nil
}

func loadTensor(path string) (*d2t2.Tensor, error) {
	// dataset:LABEL[:SCALE] loads a synthetic stand-in directly.
	if rest, ok := strings.CutPrefix(path, "dataset:"); ok {
		label, scaleStr, has := strings.Cut(rest, ":")
		scale := 32
		if has {
			v, err := strconv.Atoi(scaleStr)
			if err != nil {
				return nil, fmt.Errorf("bad dataset scale %q", scaleStr)
			}
			scale = v
		}
		return d2t2.Dataset(label, scale)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".tns") {
		return d2t2.FromTNS(f, nil)
	}
	return d2t2.FromMatrixMarket(f)
}

func parseConfig(s string) (d2t2.TileConfig, error) {
	cfg := make(d2t2.TileConfig)
	for _, part := range strings.Split(s, ",") {
		ix, v, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("want IDX=SIZE, got %q", part)
		}
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad tile size %q", v)
		}
		cfg[ix] = n
	}
	return cfg, nil
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	label := fs.String("label", "C", "dataset label (A..W or Table-5 name)")
	scale := fs.Int("scale", 32, "dimension divisor (1 = paper size)")
	out := fs.String("out", "", "output file (.mtx or .tns; default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	t, err := d2t2.Dataset(*label, *scale)
	if err != nil {
		return err
	}
	write := func(w *os.File) error {
		if t.Order() == 2 && !strings.HasSuffix(*out, ".tns") {
			return t.ToMatrixMarket(w)
		}
		return t.ToTNS(w)
	}
	if *out == "" {
		return write(os.Stdout)
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	werr := write(f)
	// A failed close loses buffered data, so it is a pipeline failure
	// like any other — never swallow it behind a defer.
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(*out)
	}
	return werr
}

func cmdStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	files := inputFlags{}
	fs.Var(files, "input", "NAME=FILE (repeatable; FILE may be dataset:LABEL[:SCALE])")
	tile := fs.Int("tile", 128, "conservative square tile dimension")
	workers := fs.Int("workers", 0, "collection worker count (0 = all cores)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	inputs, err := loadInputs(files)
	if err != nil {
		return err
	}
	if len(inputs) == 0 {
		return fmt.Errorf("no -input given")
	}
	sess := d2t2.NewSession(nil)
	sess.Workers = *workers
	names := make([]string, 0, len(inputs))
	for name := range inputs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		t := inputs[name]
		st, err := sess.Stats(t, *tile)
		if err != nil {
			return err
		}
		fmt.Printf("%s: dims=%v nnz=%d\n", name, t.Dims(), t.NNZ())
		fmt.Printf("  SizeTile=%.1f words  MaxTile=%d words  tiles=%d\n",
			st.SizeTile, st.MaxTile, st.NumTiles)
		fmt.Printf("  PrTileIdx=%v\n  ProbIndex=%v\n", fmtF(st.PrTileIdx), fmtF(st.ProbIndex))
		fmt.Printf("  CorrSum(tile)=%v\n", fmtF(st.CorrSums))
	}
	return nil
}

func fmtF(xs []float64) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = fmt.Sprintf("%.4f", x)
	}
	return "[" + strings.Join(parts, " ") + "]"
}

func cmdOptimize(args []string) error {
	fs := flag.NewFlagSet("optimize", flag.ExitOnError)
	files := inputFlags{}
	fs.Var(files, "input", "NAME=FILE (repeatable)")
	kernel := fs.String("kernel", "C(i,j) = A(i,k) * B(k,j) | order: i,k,j", "TIN kernel")
	tile := fs.Int("tile", 128, "buffer sized for this dense square tile")
	analytic := fs.Bool("analytic", false, "paper-faithful analytic statistics path")
	measure := fs.Bool("measure", false, "also execute and report exact traffic")
	workers := fs.Int("workers", 0, "cold-pipeline worker count (0 = all cores)")
	overflowTarget := fs.Float64("overflow-target", 0,
		"acceptable predicted tile-overflow probability in [0,1); 0 keeps the conservative sizing")
	calibrate := fs.Bool("calibrate", false,
		"execute the chosen plan and report the measured-vs-predicted residual")
	if err := fs.Parse(args); err != nil {
		return err
	}
	k, err := d2t2.ParseKernel(*kernel)
	if err != nil {
		return err
	}
	inputs, err := loadInputs(files)
	if err != nil {
		return err
	}
	buffer := d2t2.DenseTileWords(*tile, *tile)
	plan, err := d2t2.Optimize(k, inputs, d2t2.Options{
		BufferWords:    buffer,
		Analytic:       *analytic,
		Workers:        *workers,
		OverflowTarget: *overflowTarget,
		Calibrate:      *calibrate,
	})
	if err != nil {
		return err
	}
	fmt.Printf("kernel:    %s\n", k)
	fmt.Printf("buffer:    %d words (%d KiB)\n", buffer, buffer*4/1024)
	fmt.Printf("base tile: %d   RF: %g   TileFactor: %d\n", plan.BaseTile, plan.RF, plan.TileFactor)
	fmt.Printf("config:    %v\n", configString(plan.Config))
	fmt.Printf("predicted: %.3f MB\n", plan.PredictedMB)
	if rk := plan.Risk; rk != nil {
		fmt.Printf("risk:      target %g, percentile tile %d words, predicted overflow %.4f, utilization %.3f\n",
			rk.OverflowTarget, rk.PercentileTile, rk.PredictedOverflowRate, rk.BufferUtilization)
		if c := rk.Calibration; c != nil {
			fmt.Printf("calib:     predicted %.3f MB, measured %.3f MB, residual %.4f, bias %.4f, overflow %.4f\n",
				c.PredictedWords*4/(1<<20), c.MeasuredWords*4/(1<<20), c.Residual, c.BiasAfter, c.MeasuredOverflowRate)
		}
	}
	if *measure {
		rep, err := plan.Measure()
		if err != nil {
			return err
		}
		printReport(rep)
		if plan.Risk != nil && plan.Risk.OverflowTarget > 0 {
			fmt.Printf("measured:  overflow rate = %.4f\n", rep.OverflowRate())
		}
	}
	return nil
}

func configString(cfg d2t2.TileConfig) string {
	keys := make([]string, 0, len(cfg))
	for ix := range cfg {
		keys = append(keys, ix)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, ix := range keys {
		parts[i] = fmt.Sprintf("%s=%d", ix, cfg[ix])
	}
	return strings.Join(parts, ",")
}

func printReport(rep *d2t2.TrafficReport) {
	names := make([]string, 0, len(rep.InputWords))
	for n := range rep.InputWords {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Printf("measured:  input %s = %.3f MB\n", n, float64(rep.InputWords[n])*4/(1<<20))
	}
	fmt.Printf("measured:  output = %.3f MB\n", float64(rep.OutputWords)*4/(1<<20))
	fmt.Printf("measured:  total = %.3f MB, %d tile iterations, %d MACs\n",
		rep.TotalMB(), rep.TileIterations, rep.MACs)
}

func cmdMeasure(args []string) error {
	fs := flag.NewFlagSet("measure", flag.ExitOnError)
	files := inputFlags{}
	fs.Var(files, "input", "NAME=FILE (repeatable)")
	kernel := fs.String("kernel", "C(i,j) = A(i,k) * B(k,j) | order: i,k,j", "TIN kernel")
	config := fs.String("config", "", "tile config, e.g. i=512,k=32,j=512")
	trace := fs.String("trace", "", "write a CSV tile-event trace to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	k, err := d2t2.ParseKernel(*kernel)
	if err != nil {
		return err
	}
	cfg, err := parseConfig(*config)
	if err != nil {
		return err
	}
	if err := k.Validate(cfg); err != nil {
		return err
	}
	inputs, err := loadInputs(files)
	if err != nil {
		return err
	}
	var rep *d2t2.TrafficReport
	if *trace != "" {
		f, err := os.Create(*trace)
		if err != nil {
			return err
		}
		defer f.Close()
		rep, err = d2t2.MeasureConfigTraced(k, inputs, cfg, f)
		if err != nil {
			return err
		}
		fmt.Printf("trace written to %s\n", *trace)
	} else {
		var err error
		rep, err = d2t2.MeasureConfig(k, inputs, cfg)
		if err != nil {
			return err
		}
	}
	printReport(rep)
	return nil
}

func cmdPredict(args []string) error {
	fs := flag.NewFlagSet("predict", flag.ExitOnError)
	files := inputFlags{}
	fs.Var(files, "input", "NAME=FILE (repeatable)")
	kernel := fs.String("kernel", "C(i,j) = A(i,k) * B(k,j) | order: i,k,j", "TIN kernel")
	config := fs.String("config", "", "tile config, e.g. i=512,k=32,j=512")
	tile := fs.Int("tile", 128, "conservative tile the statistics are collected at")
	workers := fs.Int("workers", 0, "collection worker count (0 = all cores)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	k, err := d2t2.ParseKernel(*kernel)
	if err != nil {
		return err
	}
	cfg, err := parseConfig(*config)
	if err != nil {
		return err
	}
	inputs, err := loadInputs(files)
	if err != nil {
		return err
	}
	sess := d2t2.NewSession(nil)
	sess.Workers = *workers
	pred, err := sess.Predict(k, inputs, cfg, *tile)
	if err != nil {
		return err
	}
	fmt.Printf("predicted: %.3f MB total\n", pred)
	return nil
}

func cmdSpy(args []string) error {
	fs := flag.NewFlagSet("spy", flag.ExitOnError)
	files := inputFlags{}
	fs.Var(files, "input", "NAME=FILE (repeatable; FILE may be dataset:LABEL[:SCALE])")
	width := fs.Int("width", 72, "plot width in characters")
	height := fs.Int("height", 36, "plot height in characters")
	if err := fs.Parse(args); err != nil {
		return err
	}
	inputs, err := loadInputs(files)
	if err != nil {
		return err
	}
	if len(inputs) == 0 {
		return fmt.Errorf("no -input given")
	}
	names := make([]string, 0, len(inputs))
	for name := range inputs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		t := inputs[name]
		fmt.Printf("%s: dims=%v nnz=%d\n", name, t.Dims(), t.NNZ())
		fmt.Println(t.Spy(*width, *height))
	}
	return nil
}
