package main

import (
	"os"
	"path/filepath"
	"testing"

	"d2t2"
)

func TestParseConfig(t *testing.T) {
	cfg, err := parseConfig("i=512, k=32,j=512")
	if err != nil {
		t.Fatal(err)
	}
	if cfg["i"] != 512 || cfg["k"] != 32 || cfg["j"] != 512 {
		t.Fatalf("cfg = %v", cfg)
	}
	for _, bad := range []string{"", "i", "i=0", "i=x", "i=1,"} {
		if _, err := parseConfig(bad); err == nil {
			t.Fatalf("accepted %q", bad)
		}
	}
}

func TestInputFlags(t *testing.T) {
	f := inputFlags{}
	if err := f.Set("A=a.mtx"); err != nil {
		t.Fatal(err)
	}
	if err := f.Set("B=dataset:C:64"); err != nil {
		t.Fatal(err)
	}
	if f["A"] != "a.mtx" || f["B"] != "dataset:C:64" {
		t.Fatalf("flags = %v", f)
	}
	if err := f.Set("noequals"); err == nil {
		t.Fatal("bad flag accepted")
	}
	if f.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestLoadTensorDatasetAndFile(t *testing.T) {
	// dataset: prefix path.
	d, err := loadTensor("dataset:Q:96")
	if err != nil {
		t.Fatal(err)
	}
	if d.NNZ() == 0 {
		t.Fatal("empty dataset")
	}
	if _, err := loadTensor("dataset:Q:xx"); err == nil {
		t.Fatal("bad scale accepted")
	}
	if _, err := loadTensor("/nonexistent/file.mtx"); err == nil {
		t.Fatal("missing file accepted")
	}

	// Real file round trip through the loader.
	dir := t.TempDir()
	path := filepath.Join(dir, "m.mtx")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	m := d2t2.NewTensor(4, 4)
	m.Set([]int{1, 2}, 3)
	if err := m.ToMatrixMarket(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	back, err := loadTensor(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.NNZ() != 1 {
		t.Fatal("file load lost data")
	}

	// tns path.
	tnsPath := filepath.Join(dir, "t.tns")
	f2, _ := os.Create(tnsPath)
	t3 := d2t2.NewTensor(3, 3, 3)
	t3.Set([]int{0, 1, 2}, 4)
	if err := t3.ToTNS(f2); err != nil {
		t.Fatal(err)
	}
	f2.Close()
	back3, err := loadTensor(tnsPath)
	if err != nil {
		t.Fatal(err)
	}
	if back3.Order() != 3 {
		t.Fatalf("tns load order = %d", back3.Order())
	}
}

func TestCmdGenAndOptimizeEndToEnd(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "gen.mtx")
	if err := cmdGen([]string{"-label", "Q", "-scale", "96", "-out", out}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(out); err != nil {
		t.Fatal(err)
	}
	if err := cmdStats([]string{"-input", "A=" + out, "-tile", "32"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdOptimize([]string{
		"-input", "A=" + out, "-input", "B=dataset:Q:96", "-tile", "32",
	}); err != nil {
		t.Fatal(err)
	}
	if err := cmdMeasure([]string{
		"-input", "A=" + out, "-input", "B=dataset:Q:96",
		"-config", "i=32,k=32,j=32",
	}); err != nil {
		t.Fatal(err)
	}
	if err := cmdPredict([]string{
		"-input", "A=" + out, "-input", "B=dataset:Q:96",
		"-config", "i=64,k=16,j=64", "-tile", "32",
	}); err != nil {
		t.Fatal(err)
	}
}

func TestCmdMeasureTrace(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.csv")
	if err := cmdMeasure([]string{
		"-input", "A=dataset:Q:96", "-input", "B=dataset:Q:96",
		"-config", "i=32,k=32,j=32", "-trace", tracePath,
	}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("empty trace")
	}
}
