// Command expbench regenerates every table and figure of the paper's
// evaluation (DESIGN.md §6) on the synthetic dataset suite and prints
// them as text tables. Results for the default configuration are
// recorded in EXPERIMENTS.md.
//
// Usage:
//
//	expbench                         # full suite (several minutes)
//	expbench -quick                  # fast subset
//	expbench -exp fig6b,fig6c        # selected experiments
//	expbench -scale 64 -tile 64      # custom dataset scale / buffer
//	expbench -labels A,C,E           # restrict matrices
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"d2t2/internal/buildinfo"
	"d2t2/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "fast subset (small scale, few matrices)")
	exp := flag.String("exp", "", "comma-separated experiment ids (default: all)")
	scale := flag.Int("scale", 0, "dataset scale divisor (0 = suite default)")
	tile := flag.Int("tile", 0, "conservative tile side (0 = suite default)")
	labels := flag.String("labels", "", "comma-separated matrix labels (default: suite)")
	workers := flag.Int("workers", 0, "exec + cold-pipeline worker count (0 = all cores; results are identical for any value)")
	format := flag.String("format", "text", "output format: text, md or json")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()

	if *version {
		fmt.Println("expbench", buildinfo.Version)
		return
	}

	suite := experiments.DefaultSuite()
	if *quick {
		suite = experiments.QuickSuite()
	}
	if *scale > 0 {
		suite.Scale = *scale
	}
	if *tile > 0 {
		suite.TileSide = *tile
	}
	if *labels != "" {
		suite.Labels = strings.Split(*labels, ",")
	}
	if *workers > 0 {
		suite.Workers = *workers
	}

	var selected []experiments.Experiment
	if *exp == "" {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(*exp, ",") {
			e, ok := experiments.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "expbench: unknown experiment %q\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	fmt.Printf("suite: scale=%d tile=%d buffer=%d words (%d KiB) matrices=%v\n\n",
		suite.Scale, suite.TileSide, suite.BufferWords(), suite.BufferWords()*4/1024,
		suite.MatrixLabels())

	failed := 0
	for _, e := range selected {
		start := time.Now()
		tbl, err := e.Run(suite)
		if err != nil {
			fmt.Fprintf(os.Stderr, "expbench: %s failed: %v\n", e.ID, err)
			failed++
			continue
		}
		switch *format {
		case "md":
			fmt.Println(tbl.Markdown())
		case "json":
			fmt.Println(tbl.JSON())
		default:
			fmt.Println(tbl.Format())
		}
		fmt.Printf("(%s in %.1fs)\n\n", e.ID, time.Since(start).Seconds())
	}
	if failed > 0 {
		os.Exit(1)
	}
}
