package d2t2

// Benchmark harness: one benchmark per paper table/figure (DESIGN.md §6),
// each regenerating its experiment on the quick suite and reporting the
// headline number as a custom metric, plus microbenchmarks of the
// pipeline stages (tiling, statistics collection, model prediction,
// measurement). Run with:
//
//	go test -bench=. -benchmem
//
// The full-scale evaluation lives in cmd/expbench.

import (
	"strconv"
	"testing"

	"d2t2/internal/einsum"
	"d2t2/internal/exec"
	"d2t2/internal/experiments"
	"d2t2/internal/hierarchy"
	"d2t2/internal/model"
	"d2t2/internal/optimizer"
	"d2t2/internal/sparseloop"
	"d2t2/internal/stats"
	"d2t2/internal/tiling"
)

// benchSuite returns a fresh quick suite per benchmark (avoids cross-
// benchmark cache effects in timings).
func benchSuite() *experiments.Suite { return experiments.QuickSuite() }

// metricFromNote extracts the first float in a table cell for reporting.
func lastColMean(tbl *experiments.Table, col int) float64 {
	sum, n := 0.0, 0
	for _, row := range tbl.Rows {
		if v, err := strconv.ParseFloat(row[col], 64); err == nil {
			sum += v
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

func runExperiment(b *testing.B, id string, metricCol int, metricName string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		e, ok := experiments.ByID(id)
		if !ok {
			b.Fatalf("unknown experiment %s", id)
		}
		tbl, err := e.Run(benchSuite())
		if err != nil {
			b.Fatal(err)
		}
		if metricCol >= 0 {
			b.ReportMetric(lastColMean(tbl, metricCol), metricName)
		}
	}
}

func BenchmarkFig3c(b *testing.B)            { runExperiment(b, "fig3c", 4, "totalTraffic") }
func BenchmarkFig5Validation(b *testing.B)   { runExperiment(b, "fig5", 2, "meanErrPct") }
func BenchmarkFig6aLinearity(b *testing.B)   { runExperiment(b, "fig6a", 2, "speedup") }
func BenchmarkFig6bTailors(b *testing.B)     { runExperiment(b, "fig6b", 1, "d2t2Speedup") }
func BenchmarkFig6cDRT(b *testing.B)         { runExperiment(b, "fig6c", 1, "d2t2Improvement") }
func BenchmarkFig7Overhead(b *testing.B)     { runExperiment(b, "fig7", 4, "statsPct") }
func BenchmarkFig8CorrShape(b *testing.B)    { runExperiment(b, "fig8", 1, "sumCorrs") }
func BenchmarkFig9Ablation(b *testing.B)     { runExperiment(b, "fig9", 1, "noCorrsRatio") }
func BenchmarkSec66Optimality(b *testing.B)  { runExperiment(b, "sec66", 3, "trafficSharePct") }
func BenchmarkSec67PackedTiles(b *testing.B) { runExperiment(b, "sec67", 1, "packedRatio") }

func BenchmarkTable4HigherOrder(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := &experiments.Suite{Scale: 48, TileSide: 32}
		tbl, err := experiments.Table4(s)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(lastColMean(tbl, 2), "ttmImprovement")
	}
}

func BenchmarkTable5Opal(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.Table5()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(lastColMean(tbl, 3), "opalSpeedup")
	}
}

// --- pipeline-stage microbenchmarks ---------------------------------

func benchMatrix(b *testing.B) map[string]*d2t2Tensor {
	b.Helper()
	a, err := Dataset("E", 64)
	if err != nil {
		b.Fatal(err)
	}
	return map[string]*d2t2Tensor{"A": a, "B": a.Transpose()}
}

// d2t2Tensor aliases the public tensor for the helpers below.
type d2t2Tensor = Tensor

func BenchmarkInitialTiling(b *testing.B) {
	mats := benchMatrix(b)
	coo := mats["A"].coo
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tiling.New(coo, []int{64, 64}, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStatsCollection(b *testing.B) {
	mats := benchMatrix(b)
	coo := mats["A"].coo
	tt, err := tiling.New(coo, []int{64, 64}, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stats.CollectFromTiled(coo, tt, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkModelPredict(b *testing.B) {
	mats := benchMatrix(b)
	e := einsum.SpMSpMIKJ()
	st := make(map[string]*stats.Stats)
	for _, name := range []string{"A", "B"} {
		ref, _ := e.Input(name)
		s, _, err := stats.Collect(mats[name].coo, []int{64, 64}, e.LevelOrder(ref), nil)
		if err != nil {
			b.Fatal(err)
		}
		st[name] = s
	}
	pred, err := model.New(e, st)
	if err != nil {
		b.Fatal(err)
	}
	cfg := model.Config{"i": 256, "k": 16, "j": 256}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pred.Predict(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOptimizePipeline(b *testing.B) {
	mats := benchMatrix(b)
	inputs := map[string]*Tensor{"A": mats["A"], "B": mats["B"]}
	lowered := Inputs(inputs).lower()
	e := einsum.SpMSpMIKJ()
	buffer := tiling.DenseFootprintWords([]int{64, 64})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := optimizer.Optimize(e, lowered, optimizer.Options{BufferWords: buffer}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMeasureBackend(b *testing.B) {
	mats := benchMatrix(b)
	e := einsum.SpMSpMIKJ()
	lowered := Inputs(map[string]*Tensor{"A": mats["A"], "B": mats["B"]}).lower()
	tiled, err := optimizer.TileAll(e, lowered, model.Config{"i": 64, "k": 64, "j": 64})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exec.Measure(e, tiled, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCSFBuild(b *testing.B) {
	mats := benchMatrix(b)
	coo := mats["A"].coo
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tt, err := tiling.New(coo, []int{coo.Dims[0], coo.Dims[1]}, nil)
		if err != nil {
			b.Fatal(err)
		}
		_ = tt
	}
}

func BenchmarkSparseloopEvaluate(b *testing.B) {
	mats := benchMatrix(b)
	e := einsum.SpMSpMIKJ()
	lowered := Inputs(map[string]*Tensor{"A": mats["A"], "B": mats["B"]}).lower()
	tiled, err := optimizer.TileAll(e, lowered, model.Config{"i": 64, "k": 64, "j": 64})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sparseloop.Evaluate(e, tiled, sparseloop.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHierarchyOptimize(b *testing.B) {
	mats := benchMatrix(b)
	e := einsum.SpMSpMIKJ()
	lowered := Inputs(map[string]*Tensor{"A": mats["A"], "B": mats["B"]}).lower()
	opts := hierarchy.Options{
		L2BufferWords: tiling.DenseFootprintWords([]int{128, 128}),
		L1BufferWords: tiling.DenseFootprintWords([]int{16, 16}),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hierarchy.Optimize(e, lowered, opts); err != nil {
			b.Fatal(err)
		}
	}
}
